//! The whole GPU: cores + memory hierarchy + the global cycle loop.

use sparseweaver_fault::FaultHandle;
use sparseweaver_isa::{DecodedProgram, Program};
use sparseweaver_mem::{Hierarchy, LevelStats, MainMemory, MemRecorderHandle};
use sparseweaver_trace::{CounterSnapshot, EventData, ProfileHandle, StallCause, TraceHandle};
use sparseweaver_weaver::eghw::EghwLayout;

use sparseweaver_mem::HierarchyState;

use crate::config::GpuConfig;
use crate::core::{Blocked, Core, CoreState, IssueOutcome};
use crate::stats::{KernelStats, PendKind};
use crate::SimError;

/// The simulated GPU.
///
/// Functional state lives in [`MainMemory`]; the hierarchy and cores only
/// decide timing. Caches stay warm across launches (iterative graph
/// algorithms relaunch kernels every superstep, as on real hardware).
///
/// # Examples
///
/// ```
/// use sparseweaver_isa::{Asm, CsrKind, Width};
/// use sparseweaver_sim::{Gpu, GpuConfig};
///
/// // Each thread stores its global thread ID to memory.
/// let mut a = Asm::new("tid_store");
/// let tid = a.reg();
/// let addr = a.reg();
/// a.csr(tid, CsrKind::GlobalTid);
/// a.muli(addr, tid, 8);
/// a.stg(tid, addr, 0, Width::B8);
/// a.halt();
/// let prog = a.finish();
///
/// let mut gpu = Gpu::new(GpuConfig::small_test());
/// let bytes = 8 * gpu.config().total_threads();
/// gpu.mem_mut().grow_to(bytes);
/// let stats = gpu.launch(&prog, &[])?;
/// assert!(stats.cycles > 0);
/// assert_eq!(gpu.mem().read(8 * 5, 8), 5);
/// # Ok::<(), sparseweaver_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct Gpu {
    cfg: GpuConfig,
    mem: MainMemory,
    hierarchy: Hierarchy,
    cores: Vec<Core>,
    tracer: Option<TraceHandle>,
    profiler: Option<ProfileHandle>,
    recorder: Option<MemRecorderHandle>,
    fault: Option<FaultHandle>,
    occupancy: Occupancy,
    configured_warps_per_core: usize,
    fast_forward: bool,
}

/// Register-file occupancy of the most recent launch.
///
/// `resident < configured` means the register file — not the warp
/// scheduler — was the binding limit on parallelism for that kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Occupancy {
    /// Registers the launched kernel touches
    /// ([`Program::register_high_water`]).
    pub kernel_high_water: usize,
    /// Warps per core the register file can hold for that kernel
    /// ([`GpuConfig::occupancy_cap`]).
    pub cap: usize,
    /// Warps per core actually resident this launch.
    pub resident: usize,
    /// Warps per core the machine was configured with (see
    /// [`Gpu::set_configured_warps_per_core`]).
    pub configured: usize,
}

/// Complete dynamic state of a [`Gpu`], as captured by
/// [`Gpu::save_state`] for checkpointing.
///
/// Everything the machine mutates across launches is here: per-core
/// state (warps, Weaver/EGHW units, shared memory), the cache
/// hierarchy's arrays and port clocks, device-memory contents and
/// traffic counters, and the occupancy gauges of the most recent
/// launch. Configuration and attached handles (tracer, profiler,
/// fault injector) are *not* part of the state — a restore target is
/// rebuilt from the same configuration first.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuState {
    /// Per-core state, in core-ID order.
    pub cores: Vec<CoreState>,
    /// Cache arrays, port clocks, and DRAM access count.
    pub hierarchy: HierarchyState,
    /// Device-memory contents.
    pub mem_data: Vec<u8>,
    /// Device-memory `(reads, writes)` traffic counters.
    pub mem_traffic: (u64, u64),
    /// Occupancy gauges of the most recent launch.
    pub occupancy: Occupancy,
}

impl Gpu {
    /// Builds a GPU from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`GpuConfig::validate`]).
    pub fn new(cfg: GpuConfig) -> Self {
        cfg.validate();
        Gpu {
            mem: MainMemory::new(1 << 20),
            hierarchy: Hierarchy::new(cfg.hierarchy),
            cores: (0..cfg.num_cores).map(|i| Core::new(i, &cfg)).collect(),
            configured_warps_per_core: cfg.warps_per_core,
            cfg,
            tracer: None,
            profiler: None,
            recorder: None,
            fault: None,
            occupancy: Occupancy::default(),
            fast_forward: true,
        }
    }

    /// Enables or disables the idle-cycle fast-forward cache (on by
    /// default).
    ///
    /// With fast-forward on, a core that reports [`IssueOutcome::Blocked`]
    /// is not re-scanned until the global clock reaches the block's
    /// `next_ready` cycle; its cached stall reason is replayed into the
    /// attribution counters and trace events for every skipped scan. This
    /// is bit-identical to re-scanning because warp wake-ups are purely
    /// core-local: the scoreboard's ready cycles are fixed at issue time,
    /// and barriers and the Weaver unit only advance on the owning core's
    /// own issues. Disabling it restores the per-cycle re-scan — useful as
    /// a determinism cross-check; both paths must produce the same stats,
    /// traces, and outputs.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Register-file occupancy of the most recent launch (zeros before
    /// the first launch).
    pub fn occupancy(&self) -> Occupancy {
        self.occupancy
    }

    /// Records the warp count the *user* configured, when it differs from
    /// this machine's physical `warps_per_core`.
    ///
    /// A session that pre-clamps its machine to the occupancy cap (so
    /// kernel geometry and physical warps agree) builds the `Gpu` with the
    /// clamped warp count; calling this with the original keeps
    /// [`Occupancy::configured`] — and the exported `warps_configured`
    /// gauge — honest about what the cap displaced.
    pub fn set_configured_warps_per_core(&mut self, configured: usize) {
        self.configured_warps_per_core = configured.max(self.cfg.warps_per_core);
    }

    /// Attaches (or detaches, with `None`) a structured-event tracer.
    ///
    /// The handle is distributed to the memory hierarchy and every core,
    /// so all subsequent launches emit events and counter samples into it.
    /// With no tracer attached — the default — the hooks are `None` checks
    /// on hot paths and the cycle model is untouched.
    pub fn set_tracer(&mut self, tracer: Option<TraceHandle>) {
        self.hierarchy.set_tracer(tracer.clone());
        for c in &mut self.cores {
            c.set_tracer(tracer.clone());
        }
        self.tracer = tracer;
    }

    /// Attaches (or detaches, with `None`) a latency profiler.
    ///
    /// The handle is distributed to the memory hierarchy and every core:
    /// subsequent launches record per-level memory latencies, Weaver
    /// request→response latencies, gather-iteration gaps, and per-warp
    /// issue counts into it. With no profiler attached — the default —
    /// the hooks are `None` checks on hot paths and the cycle model is
    /// untouched.
    pub fn set_profiler(&mut self, profiler: Option<ProfileHandle>) {
        self.hierarchy.set_profiler(profiler.clone());
        for c in &mut self.cores {
            c.set_profiler(profiler.clone());
        }
        self.profiler = profiler;
    }

    /// Attaches (or detaches, with `None`) a memory-trace recorder.
    ///
    /// The handle is distributed to the memory hierarchy (which appends
    /// one `swmtrace-v1` record per request, in service order) and every
    /// core (which stamps warp context and barrier arrivals); the GPU
    /// itself records each kernel launch, so a replay resets the port
    /// clocks exactly where the live machine did. With no recorder
    /// attached — the default — the hooks are `None` checks and the
    /// cycle model is untouched.
    pub fn set_mem_recorder(&mut self, recorder: Option<MemRecorderHandle>) {
        self.hierarchy.set_recorder(recorder.clone());
        for c in &mut self.cores {
            c.set_mem_recorder(recorder.clone());
        }
        self.recorder = recorder;
    }

    /// Attaches (or detaches, with `None`) a deterministic fault injector.
    ///
    /// The handle is distributed to device memory (word corruption on
    /// device reads), every core (register-file and instruction-fetch bit
    /// flips), and each core's Weaver unit (Table-II response drops and
    /// delays). With no injector attached — the default — every hook is a
    /// `None` check and the machine is exactly the fault-free simulator.
    pub fn set_fault_injector(&mut self, fault: Option<FaultHandle>) {
        self.mem.set_fault_injector(fault.clone());
        for c in &mut self.cores {
            c.set_fault_injector(fault.clone());
        }
        self.fault = fault;
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultHandle> {
        self.fault.as_ref()
    }

    /// The machine configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Read access to device memory.
    pub fn mem(&self) -> &MainMemory {
        &self.mem
    }

    /// Mutable access to device memory (host-side data movement).
    pub fn mem_mut(&mut self) -> &mut MainMemory {
        &mut self.mem
    }

    /// Cumulative memory-hierarchy statistics.
    pub fn mem_stats(&self) -> LevelStats {
        self.hierarchy.stats()
    }

    /// Flushes caches and resets memory statistics (between independent
    /// experiments).
    pub fn reset_memory_system(&mut self) {
        self.hierarchy.reset();
    }

    /// Installs the EGHW graph layout on every core.
    pub fn set_eghw_layout(&mut self, layout: EghwLayout) {
        for c in &mut self.cores {
            c.set_eghw_layout(layout);
        }
    }

    /// Enables instruction tracing on every core (up to `cap_per_core`
    /// records each per launch).
    pub fn enable_trace(&mut self, cap_per_core: usize) {
        for c in &mut self.cores {
            c.enable_trace(cap_per_core);
        }
    }

    /// Collects and clears the trace from every core, merged and sorted
    /// by `(cycle, core)`.
    pub fn take_trace(&mut self) -> Vec<crate::core::TraceRecord> {
        let mut all: Vec<_> = self.cores.iter_mut().flat_map(|c| c.take_trace()).collect();
        all.sort_by_key(|r| (r.cycle, r.core, r.warp));
        all
    }

    /// Captures the complete dynamic machine state for a checkpoint.
    ///
    /// Taken between launches (the cycle loop is not re-entrant), the
    /// snapshot plus the original configuration fully determines every
    /// subsequent launch: restoring it onto a freshly built `Gpu` of
    /// the same configuration is bit-identical to never having stopped.
    pub fn save_state(&self) -> GpuState {
        GpuState {
            cores: self.cores.iter().map(Core::save_state).collect(),
            hierarchy: self.hierarchy.save_state(),
            mem_data: self.mem.bytes().to_vec(),
            mem_traffic: self.mem.traffic(),
            occupancy: self.occupancy,
        }
    }

    /// Restores machine state captured by [`Gpu::save_state`].
    ///
    /// The target must be built from the same configuration the state
    /// was captured under; shape mismatches (core count, warp count,
    /// cache geometry, table sizes) are rejected with a description of
    /// the first offending component.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch; the machine may be left
    /// partially restored and should be discarded.
    pub fn restore_state(&mut self, state: &GpuState) -> Result<(), String> {
        if state.cores.len() != self.cores.len() {
            return Err(format!(
                "core count mismatch: state has {}, machine has {}",
                state.cores.len(),
                self.cores.len()
            ));
        }
        for (i, (core, cs)) in self.cores.iter_mut().zip(&state.cores).enumerate() {
            core.restore_state(cs)
                .map_err(|e| format!("core {i}: {e}"))?;
        }
        self.hierarchy
            .restore_state(&state.hierarchy)
            .map_err(|e| format!("hierarchy: {e}"))?;
        self.mem.restore_contents(&state.mem_data);
        self.mem
            .restore_traffic(state.mem_traffic.0, state.mem_traffic.1);
        self.occupancy = state.occupancy;
        Ok(())
    }

    /// Runs `program` to completion on all cores and returns its stats.
    ///
    /// Before the first cycle, the launch sizes each core's resident warp
    /// set to what the register file can hold for this kernel
    /// ([`GpuConfig::occupancy_cap`] of its register high-water); excess
    /// warps are parked for the whole launch and the thread-geometry CSRs
    /// report the reduced machine.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on kernel bugs (divergent uniform branches,
    /// unbalanced joins, touching more registers than a warp's allotment),
    /// deadlock, or exceeding the cycle budget.
    pub fn launch(&mut self, program: &Program, args: &[u64]) -> Result<KernelStats, SimError> {
        let high_water = program.register_high_water();
        if high_water > self.cfg.regfile_regs_per_warp {
            return Err(SimError::RegisterPressure {
                kernel: program.name().to_string(),
                high_water,
                limit: self.cfg.regfile_regs_per_warp,
            });
        }
        let cap = self.cfg.occupancy_cap(high_water);
        let resident = cap.min(self.cfg.warps_per_core);
        self.occupancy = Occupancy {
            kernel_high_water: high_water,
            cap,
            resident,
            configured: self.configured_warps_per_core,
        };
        for c in &mut self.cores {
            c.reset_for_launch(resident);
        }
        self.hierarchy.reset_ports();
        if let Some(r) = &self.recorder {
            r.kernel_launch(program.name());
        }
        let mem_before = self.hierarchy.stats();
        let traffic_before = self.mem.traffic();
        let fault_before = self.fault.as_ref().map(|f| f.counts()).unwrap_or_default();
        if let Some(tr) = &self.tracer {
            tr.kernel_begin(program.name());
        }
        if let Some(p) = &self.profiler {
            p.launch_begin();
        }
        let num_cores = self.cores.len();
        // Decode once; the per-cycle issue path never touches the word
        // decoder again (the fetch-flip fault path re-encodes per fetch).
        let decoded = DecodedProgram::new(program);
        let mut cycle: u64 = 0;
        let mut warp_cycles: u64 = 0;
        let mut barrier_warp_cycles: u64 = 0;
        let mut blocked: Vec<(usize, crate::core::Blocked)> = Vec::new();
        // Fast-forward cache: a core's last Blocked outcome, valid (and
        // replayed without re-scanning) until `next_ready`.
        let mut core_blocked: Vec<Option<Blocked>> = vec![None; num_cores];

        loop {
            if cycle > self.cfg.max_cycles {
                return Err(SimError::CycleLimit {
                    kernel: program.name().to_string(),
                    limit: self.cfg.max_cycles,
                    hang: Box::new(self.build_hang_report(program.name(), cycle)),
                });
            }
            blocked.clear();
            let mut any_issued = false;
            let mut all_finished = true;
            for (i, cached) in core_blocked.iter_mut().enumerate() {
                if self.fast_forward {
                    if let Some(b) = *cached {
                        if cycle < b.next_ready {
                            // Still waiting on the same producer; replay
                            // the cached stall without re-scanning.
                            all_finished = false;
                            blocked.push((i, b));
                            continue;
                        }
                        *cached = None;
                    }
                }
                let outcome = {
                    let core = &mut self.cores[i];
                    core.try_issue(
                        cycle,
                        program,
                        &decoded,
                        args,
                        &mut self.hierarchy,
                        &mut self.mem,
                        num_cores,
                    )?
                };
                match outcome {
                    IssueOutcome::Issued => {
                        any_issued = true;
                        all_finished = false;
                    }
                    IssueOutcome::Blocked(b) => {
                        all_finished = false;
                        blocked.push((i, b));
                        if self.fast_forward {
                            *cached = Some(b);
                        }
                    }
                    IssueOutcome::Finished => {
                        if self.cores[i].stats.finish_cycle == 0 {
                            self.cores[i].stats.finish_cycle = cycle;
                        }
                    }
                }
            }
            if all_finished {
                break;
            }
            // How far to advance: 1 cycle if anything issued, else jump to
            // the earliest wake-up.
            let delta = if any_issued {
                1
            } else {
                let jump = blocked
                    .iter()
                    .map(|(_, b)| b.next_ready)
                    .min()
                    .unwrap_or(u64::MAX);
                if jump == u64::MAX {
                    let hang = Box::new(self.build_hang_report(program.name(), cycle));
                    let kernel = program.name().to_string();
                    // A deadlock whose proximate cause is a dropped Weaver
                    // response is a protocol timeout: the runtime can retry
                    // the launch and fall back to the software `S_wm`
                    // schedule, neither of which helps a true deadlock.
                    if self.fault.as_ref().is_some_and(|f| f.weaver_faulty()) {
                        return Err(SimError::WeaverTimeout {
                            kernel,
                            cycle,
                            hang,
                        });
                    }
                    return Err(SimError::Deadlock {
                        kernel,
                        cycle,
                        hang,
                    });
                }
                jump - cycle
            };
            // Attribute stall cycles to blocked cores.
            for &(i, b) in &blocked {
                let s = &mut self.cores[i].stats;
                let n = delta;
                if b.barrier {
                    s.stalls.barrier += n;
                } else {
                    match b.reason {
                        PendKind::Memory => s.stalls.memory += n,
                        PendKind::Shared => s.stalls.shared += n,
                        PendKind::Weaver => s.stalls.weaver += n,
                        PendKind::Exec | PendKind::None => s.stalls.exec_dep += n,
                    }
                }
                s.phase_cycles[b.phase as usize] += n;
                if let Some(tr) = &self.tracer {
                    tr.emit(
                        cycle,
                        i as u32,
                        EventData::WarpStall {
                            cause: stall_cause(&b),
                            phase: b.phase,
                            cycles: n,
                        },
                    );
                }
            }
            // Warp residency accounting.
            for c in &self.cores {
                if !c.finished() {
                    warp_cycles += c.resident_warps() as u64 * delta;
                    barrier_warp_cycles += c.warps_at_barrier() as u64 * delta;
                }
            }
            cycle += delta;
            if let Some(tr) = &self.tracer {
                if tr.sample_due(cycle) {
                    let snap = self.launch_snapshot(
                        barrier_warp_cycles,
                        &mem_before,
                        traffic_before,
                        &fault_before,
                    );
                    tr.record_sample(cycle, &snap);
                }
            }
        }

        // Fold per-core stats.
        let mem_after = self.hierarchy.stats();
        let mut stats = KernelStats {
            cycles: cycle,
            launches: 1,
            warp_cycles,
            ..KernelStats::default()
        };
        stats.stalls.barrier += barrier_warp_cycles;
        for c in &self.cores {
            stats.instructions += c.stats.instructions;
            stats.thread_instructions += c.stats.thread_instructions;
            stats.stalls.add(&c.stats.stalls);
            for p in 0..crate::stats::Phase::COUNT {
                stats.phase_cycles[p] += c.stats.phase_cycles[p];
            }
            let (f, d, r) = c.weaver.counters();
            stats.weaver_counters.0 += f;
            stats.weaver_counters.1 += d;
            stats.weaver_counters.2 += r;
        }
        stats.mem = LevelStats {
            l1: diff_cache(mem_after.l1, mem_before.l1),
            l2: diff_cache(mem_after.l2, mem_before.l2),
            l3: match (mem_after.l3, mem_before.l3) {
                (Some(a), Some(b)) => Some(diff_cache(a, b)),
                (a, _) => a,
            },
            dram_accesses: mem_after.dram_accesses - mem_before.dram_accesses,
        };
        if let Some(tr) = &self.tracer {
            let snap = self.launch_snapshot(
                barrier_warp_cycles,
                &mem_before,
                traffic_before,
                &fault_before,
            );
            tr.kernel_end(cycle, &snap);
        }
        Ok(stats)
    }

    /// Snapshots the whole machine for hang diagnostics: per-warp
    /// scheduling state on every core plus memory-port occupancy.
    fn build_hang_report(&self, kernel: &str, cycle: u64) -> crate::hang::HangReport {
        crate::hang::HangReport {
            kernel: kernel.to_string(),
            cycle,
            cores: self.cores.iter().map(|c| c.hang_state(cycle)).collect(),
            ports: self.hierarchy.port_occupancy(),
        }
    }

    /// Launch-relative counter snapshot for the tracer: everything measured
    /// since the current launch began (the tracer folds it onto committed
    /// totals from earlier launches).
    fn launch_snapshot(
        &self,
        barrier_warp_cycles: u64,
        mem_before: &LevelStats,
        traffic_before: (u64, u64),
        fault_before: &sparseweaver_fault::FaultCounts,
    ) -> CounterSnapshot {
        let mut snap = CounterSnapshot::default();
        for c in &self.cores {
            snap.instructions += c.stats.instructions;
            snap.thread_instructions += c.stats.thread_instructions;
            snap.stall_memory += c.stats.stalls.memory;
            snap.stall_shared += c.stats.stalls.shared;
            snap.stall_exec_dep += c.stats.stalls.exec_dep;
            snap.stall_l1_queue += c.stats.stalls.l1_queue;
            snap.stall_barrier += c.stats.stalls.barrier;
            snap.stall_weaver += c.stats.stalls.weaver;
            for (acc, p) in snap.phase_cycles.iter_mut().zip(c.stats.phase_cycles) {
                *acc += p;
            }
            let (f, d, r) = c.weaver.counters();
            snap.weaver_st_fetches += f;
            snap.weaver_dec_requests += d;
            snap.weaver_registrations += r;
            let (sr, sw) = c.shared.traffic();
            snap.shared_reads += sr;
            snap.shared_writes += sw;
        }
        snap.stall_barrier += barrier_warp_cycles;
        let now = self.hierarchy.stats();
        snap.l1_accesses = now.l1.accesses - mem_before.l1.accesses;
        snap.l1_hits = now.l1.hits - mem_before.l1.hits;
        snap.l2_accesses = now.l2.accesses - mem_before.l2.accesses;
        snap.l2_hits = now.l2.hits - mem_before.l2.hits;
        if let (Some(a), Some(b)) = (now.l3, mem_before.l3) {
            snap.l3_accesses = a.accesses - b.accesses;
            snap.l3_hits = a.hits - b.hits;
        }
        snap.dram_accesses = now.dram_accesses - mem_before.dram_accesses;
        if let Some(f) = &self.fault {
            let counts = f.counts();
            snap.faults_injected = counts.total() - fault_before.total();
            snap.weaver_drops = counts.weaver_drops - fault_before.weaver_drops;
        }
        let (mr, mw) = self.mem.traffic();
        snap.mem_reads = mr - traffic_before.0;
        snap.mem_writes = mw - traffic_before.1;
        snap.kernel_high_water = self.occupancy.kernel_high_water as u64;
        snap.occupancy_cap = self.occupancy.cap as u64;
        snap.warps_resident = self.occupancy.resident as u64;
        snap.warps_configured = self.occupancy.configured as u64;
        snap
    }
}

/// Maps a blocked core's reason to the trace-event stall taxonomy.
fn stall_cause(b: &Blocked) -> StallCause {
    if b.barrier {
        StallCause::Barrier
    } else {
        match b.reason {
            PendKind::Memory => StallCause::Memory,
            PendKind::Shared => StallCause::Shared,
            PendKind::Weaver => StallCause::Weaver,
            PendKind::Exec | PendKind::None => StallCause::ExecDep,
        }
    }
}

fn diff_cache(
    a: sparseweaver_mem::CacheStats,
    b: sparseweaver_mem::CacheStats,
) -> sparseweaver_mem::CacheStats {
    sparseweaver_mem::CacheStats {
        accesses: a.accesses - b.accesses,
        hits: a.hits - b.hits,
        misses: a.misses - b.misses,
        writebacks: a.writebacks - b.writebacks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseweaver_isa::{Asm, AtomOp, CsrKind, VoteOp, Width};

    fn gpu() -> Gpu {
        let mut g = Gpu::new(GpuConfig::small_test());
        g.mem_mut().grow_to(1 << 20);
        g
    }

    #[test]
    fn empty_program_finishes() {
        let mut g = gpu();
        let p = Asm::new("empty").finish();
        let s = g.launch(&p, &[]).unwrap();
        assert_eq!(s.instructions, 0);
    }

    #[test]
    fn every_thread_writes_its_tid() {
        let mut g = gpu();
        let total = g.config().total_threads();
        let mut a = Asm::new("tids");
        let tid = a.reg();
        let addr = a.reg();
        a.csr(tid, CsrKind::GlobalTid);
        a.muli(addr, tid, 8);
        a.stg(tid, addr, 0, Width::B8);
        a.halt();
        let p = a.finish();
        g.launch(&p, &[]).unwrap();
        for t in 0..total as u64 {
            assert_eq!(g.mem().read(t * 8, 8), t, "thread {t}");
        }
    }

    #[test]
    fn kernel_args_reach_threads() {
        let mut g = gpu();
        let mut a = Asm::new("args");
        let v = a.reg();
        let addr = a.reg();
        a.ldarg(v, 3);
        a.li(addr, 64);
        a.stg(v, addr, 0, Width::B8);
        a.halt();
        let p = a.finish();
        g.launch(&p, &[0, 0, 0, 777]).unwrap();
        assert_eq!(g.mem().read(64, 8), 777);
    }

    #[test]
    fn divergent_if_else_runs_both_sides() {
        let mut g = gpu();
        let mut a = Asm::new("diverge");
        let lane = a.reg();
        let is_even = a.reg();
        let addr = a.reg();
        let val = a.reg();
        let tid = a.reg();
        a.csr(lane, CsrKind::LaneId);
        a.csr(tid, CsrKind::GlobalTid);
        a.alui(sparseweaver_isa::AluOp::And, is_even, lane, 1);
        a.seqi(is_even, is_even, 0);
        a.muli(addr, tid, 8);
        a.if_else(is_even, |a| a.li(val, 100), |a| a.li(val, 200));
        a.stg(val, addr, 0, Width::B8);
        a.halt();
        let p = a.finish();
        g.launch(&p, &[]).unwrap();
        for t in 0..g.config().total_threads() as u64 {
            let expect = if (t % g.config().threads_per_warp as u64).is_multiple_of(2) {
                100
            } else {
                200
            };
            assert_eq!(g.mem().read(t * 8, 8), expect, "thread {t}");
        }
    }

    #[test]
    fn divergent_uniform_branch_is_an_error() {
        let mut g = gpu();
        let mut a = Asm::new("bad_branch");
        let lane = a.reg();
        let zero = a.zero();
        a.csr(lane, CsrKind::LaneId);
        let l = a.new_label();
        a.beq(lane, zero, l); // lane-dependent: illegal uniform branch
        a.bind(l);
        a.halt();
        let p = a.finish();
        match g.launch(&p, &[]) {
            Err(SimError::DivergentBranch { .. }) => {}
            other => panic!("expected divergence error, got {other:?}"),
        }
    }

    #[test]
    fn barrier_joins_all_warps() {
        let mut g = gpu();
        // Warp 0 writes, everyone barriers, then all read and verify via
        // a store the host checks.
        let mut a = Asm::new("barrier");
        let wid = a.reg();
        let addr = a.reg();
        let v = a.reg();
        let tid = a.reg();
        a.csr(wid, CsrKind::WarpId);
        a.csr(tid, CsrKind::GlobalTid);
        a.li(addr, 0);
        let skip = a.reg();
        a.seqi(skip, wid, 0);
        a.if_nonzero(skip, |a| {
            let c = a.reg();
            a.li(c, 42);
            a.sts(c, addr, 0, Width::B8);
            a.free(c);
        });
        a.bar();
        a.lds(v, addr, 0, Width::B8);
        let out = a.reg();
        a.muli(out, tid, 8);
        a.stg(v, out, 0, Width::B8);
        a.halt();
        let p = a.finish();
        g.launch(&p, &[]).unwrap();
        // Every thread in every core observed 42 after the barrier.
        for t in 0..g.config().total_threads() as u64 {
            assert_eq!(g.mem().read(t * 8, 8), 42, "thread {t}");
        }
    }

    #[test]
    fn mem_recorder_capture_replays_bit_identically() {
        use sparseweaver_mem::{mtrace, replay, MemRecorderHandle};

        // A kernel mixing loads, stores, atomics, and a barrier; two
        // launches so the capture crosses a port-clock reset.
        let mut a = Asm::new("capture_mix");
        let tid = a.reg();
        let addr = a.reg();
        let v = a.reg();
        let one = a.reg();
        a.csr(tid, CsrKind::GlobalTid);
        a.muli(addr, tid, 8);
        a.stg(tid, addr, 0, Width::B8);
        a.bar();
        a.ldg(v, addr, 0, Width::B8);
        a.li(addr, 128);
        a.li(one, 1);
        a.atom(AtomOp::Add, v, addr, one);
        a.halt();
        let p = a.finish();

        let mut g = gpu();
        let rec = MemRecorderHandle::in_memory(&g.config().hierarchy);
        g.set_mem_recorder(Some(rec.clone()));
        g.launch(&p, &[]).unwrap();
        g.launch(&p, &[]).unwrap();
        let live = g.mem_stats();
        let summary = rec.finalize(&live);
        assert!(summary.sink_error.is_none());
        assert!(summary.records > 0);

        let trace = mtrace::parse(&rec.take_bytes().unwrap()).expect("well-formed capture");
        let (kernels, accesses, _unqueued, atomics, barriers) = trace.counts();
        assert_eq!(kernels, 2);
        assert!(accesses > 0 && atomics > 0 && barriers > 0);
        let outcome = replay::verify(&trace).expect("valid capture config");
        assert_eq!(outcome.replayed, live, "replay must be bit-identical");
        assert!(outcome.matches());
    }

    #[test]
    fn mem_recorder_does_not_change_stats_or_output() {
        use sparseweaver_mem::MemRecorderHandle;

        let mut a = Asm::new("rec_neutral");
        let tid = a.reg();
        let addr = a.reg();
        a.csr(tid, CsrKind::GlobalTid);
        a.muli(addr, tid, 8);
        a.stg(tid, addr, 0, Width::B8);
        a.halt();
        let p = a.finish();

        let mut plain = gpu();
        let s1 = plain.launch(&p, &[]).unwrap();
        let mut recorded = gpu();
        let rec = MemRecorderHandle::in_memory(&recorded.config().hierarchy);
        recorded.set_mem_recorder(Some(rec));
        let s2 = recorded.launch(&p, &[]).unwrap();
        assert_eq!(s1.cycles, s2.cycles);
        assert_eq!(s1.mem, s2.mem);
        assert_eq!(plain.mem_stats(), recorded.mem_stats());
    }

    #[test]
    fn atomics_count_threads_exactly() {
        let mut g = gpu();
        let total = g.config().total_threads() as u64;
        let mut a = Asm::new("atomic_count");
        let addr = a.reg();
        let one = a.reg();
        let old = a.reg();
        a.li(addr, 128);
        a.li(one, 1);
        a.atom(AtomOp::Add, old, addr, one);
        a.halt();
        let p = a.finish();
        g.launch(&p, &[]).unwrap();
        assert_eq!(g.mem().read(128, 8), total);
    }

    #[test]
    fn vote_ballot_semantics() {
        let mut g = gpu();
        let mut a = Asm::new("ballot");
        let lane = a.reg();
        let pred = a.reg();
        let b = a.reg();
        let addr = a.reg();
        a.csr(lane, CsrKind::LaneId);
        a.alui(sparseweaver_isa::AluOp::And, pred, lane, 1);
        a.vote(VoteOp::Ballot, b, pred);
        a.li(addr, 256);
        a.stg(b, addr, 0, Width::B8);
        a.halt();
        let p = a.finish();
        g.launch(&p, &[]).unwrap();
        // Lanes 1 and 3 of a 4-lane warp have odd lane IDs.
        assert_eq!(g.mem().read(256, 8), 0b1010);
    }

    #[test]
    fn weaver_distribution_loop_end_to_end() {
        // Registration of two vertices, then the Fig. 9 distribution loop
        // writes one record per generated (vid, eid) work item.
        let mut g = gpu();
        let mut a = Asm::new("weaver_loop");
        let ctid = a.reg();
        let vid = a.reg();
        let loc = a.reg();
        let deg = a.reg();
        let cid = a.reg();
        a.csr(ctid, CsrKind::CoreTid);
        a.csr(cid, CsrKind::CoreId);
        // Threads 0 and 1 of core 0 register vertices 5 (deg 3, loc 10)
        // and 6 (deg 2, loc 13).
        let is_reg = a.reg();
        let t = a.reg();
        a.seqi(t, cid, 0);
        a.sltui(is_reg, ctid, 2);
        a.and(is_reg, is_reg, t);
        a.if_nonzero(is_reg, |a| {
            a.addi(vid, ctid, 5);
            a.muli(loc, ctid, 3);
            a.addi(loc, loc, 10);
            let three = a.reg();
            a.li(three, 3);
            a.sub(deg, three, ctid);
            a.free(three);
            a.weaver_reg(vid, loc, deg);
        });
        a.bar();
        // Distribution loop.
        let top = a.new_label();
        let done = a.new_label();
        let wv = a.reg();
        let we = a.reg();
        let has = a.reg();
        let any = a.reg();
        a.bind(top);
        a.weaver_dec_id(wv);
        a.snei(has, wv, -1);
        a.vote(VoteOp::Any, any, has);
        a.beq(any, a.zero(), done);
        a.weaver_dec_loc(we);
        // Record: mem[16 * eid] = vid + 1 (nonzero marker).
        a.if_nonzero(has, |a| {
            let addr = a.reg();
            let val = a.reg();
            a.muli(addr, we, 16);
            a.addi(val, wv, 1);
            a.stg(val, addr, 0, Width::B8);
            a.free(addr);
            a.free(val);
        });
        a.jmp(top);
        a.bind(done);
        a.halt();
        let p = a.finish();
        g.launch(&p, &[]).unwrap();
        // vertex 5: eids 10, 11, 12 -> marker 6; vertex 6: eids 13, 14 -> 7.
        for e in 10..13u64 {
            assert_eq!(g.mem().read(e * 16, 8), 6, "eid {e}");
        }
        for e in 13..15u64 {
            assert_eq!(g.mem().read(e * 16, 8), 7, "eid {e}");
        }
    }

    #[test]
    fn stats_populated() {
        let mut g = gpu();
        let mut a = Asm::new("stats");
        let r = a.reg();
        let addr = a.reg();
        a.li(addr, 4096);
        a.ldg(r, addr, 0, Width::B8);
        a.addi(r, r, 1);
        a.stg(r, addr, 0, Width::B8);
        a.halt();
        let p = a.finish();
        let s = g.launch(&p, &[]).unwrap();
        assert!(s.cycles > 0);
        assert!(s.instructions > 0);
        assert!(s.mem.l1.accesses > 0);
        assert!(s.warps_per_instruction() > 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut g = gpu();
            let mut a = Asm::new("det");
            let tid = a.reg();
            let addr = a.reg();
            let v = a.reg();
            a.csr(tid, CsrKind::GlobalTid);
            a.muli(addr, tid, 8);
            a.ldg(v, addr, 0, Width::B8);
            a.add(v, v, tid);
            a.stg(v, addr, 0, Width::B8);
            a.halt();
            let p = a.finish();
            g.launch(&p, &[]).unwrap().cycles
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn shared_atomics_count_within_core() {
        // Every thread of a core adds 1 to the same scratchpad counter.
        let mut g = gpu();
        let mut a = Asm::new("shared_atomic");
        let addr = a.reg();
        let one = a.reg();
        let old = a.reg();
        a.li(addr, 128);
        a.li(one, 1);
        a.atom_shared(AtomOp::Add, old, addr, one);
        a.bar();
        // Thread 0 of each core writes the counter to global memory at
        // core_id * 8.
        let ctid = a.reg();
        let is0 = a.reg();
        a.csr(ctid, CsrKind::CoreTid);
        a.seqi(is0, ctid, 0);
        a.if_nonzero(is0, |a| {
            let v = a.reg();
            let out = a.reg();
            a.lds(v, addr, 0, Width::B8);
            a.csr(out, CsrKind::CoreId);
            a.muli(out, out, 8);
            a.stg(v, out, 0, Width::B8);
            a.free(out);
            a.free(v);
        });
        a.halt();
        let p = a.finish();
        g.launch(&p, &[]).unwrap();
        let tpc = g.config().threads_per_core() as u64;
        for c in 0..g.config().num_cores as u64 {
            assert_eq!(g.mem().read(c * 8, 8), tpc, "core {c}");
        }
    }

    #[test]
    fn mem_stats_accumulate_and_reset() {
        let mut g = gpu();
        let mut a = Asm::new("touch");
        let addr = a.reg();
        let v = a.reg();
        a.li(addr, 4096);
        a.ldg(v, addr, 0, Width::B8);
        a.halt();
        let p = a.finish();
        g.launch(&p, &[]).unwrap();
        let after_one = g.mem_stats().l1.accesses;
        assert!(after_one > 0);
        g.launch(&p, &[]).unwrap();
        assert!(g.mem_stats().l1.accesses > after_one, "cumulative");
        g.reset_memory_system();
        assert_eq!(g.mem_stats().l1.accesses, 0);
    }

    #[test]
    fn tracing_records_issued_instructions() {
        let mut g = gpu();
        g.enable_trace(1000);
        let mut a = Asm::new("traced");
        let r = a.reg();
        a.li(r, 7);
        a.halt();
        let p = a.finish();
        let s = g.launch(&p, &[]).unwrap();
        let trace = g.take_trace();
        assert_eq!(trace.len() as u64, s.instructions);
        // Cycles are non-decreasing and every warp issued both instrs.
        for w in trace.windows(2) {
            assert!(w[0].cycle <= w[1].cycle);
        }
        let lis = trace
            .iter()
            .filter(|r| matches!(r.instr, sparseweaver_isa::Instr::LdImm { .. }))
            .count();
        assert_eq!(lis, g.config().num_cores * g.config().warps_per_core);
        // Tracing disabled after take_trace.
        g.launch(&p, &[]).unwrap();
        assert!(g.take_trace().is_empty());
    }

    #[test]
    fn tracer_collects_events_and_samples() {
        use sparseweaver_trace::{TraceConfig, TraceHandle};

        let mut g = gpu();
        let tr = TraceHandle::new(TraceConfig {
            sample_every: 4,
            ..TraceConfig::default()
        });
        g.set_tracer(Some(tr.clone()));
        let mut a = Asm::new("traced_kernel");
        let r = a.reg();
        let addr = a.reg();
        a.li(addr, 4096);
        a.ldg(r, addr, 0, Width::B8);
        a.addi(r, r, 1);
        a.stg(r, addr, 0, Width::B8);
        a.halt();
        let p = a.finish();
        let s = g.launch(&p, &[]).unwrap();
        let report = tr.report();
        assert_eq!(report.kernels.len(), 1);
        assert_eq!(report.kernels[0].name, "traced_kernel");
        assert_eq!(report.kernels[0].cycles, s.cycles);
        // Kernel launch/end markers plus issue, stall and cache events.
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e.data, sparseweaver_trace::EventData::WarpIssue { .. })));
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e.data, sparseweaver_trace::EventData::CacheAccess { .. })));
        // The closing sample agrees with KernelStats.
        let last = report.samples.last().expect("kernel-end sample");
        assert_eq!(last.counters.instructions, s.instructions);
        assert_eq!(last.counters.l1_accesses, s.mem.l1.accesses);
        assert_eq!(last.counters.dram_accesses, s.mem.dram_accesses);
        assert_eq!(
            last.counters.stall_memory
                + last.counters.stall_shared
                + last.counters.stall_exec_dep
                + last.counters.stall_weaver,
            s.stalls.total()
        );
    }

    #[test]
    fn tracing_does_not_change_kernel_stats() {
        use sparseweaver_trace::{TraceConfig, TraceHandle};

        let program = {
            let mut a = Asm::new("identical");
            let tid = a.reg();
            let addr = a.reg();
            let v = a.reg();
            a.csr(tid, CsrKind::GlobalTid);
            a.muli(addr, tid, 8);
            a.ldg(v, addr, 0, Width::B8);
            a.add(v, v, tid);
            a.stg(v, addr, 0, Width::B8);
            a.bar();
            a.atom(AtomOp::Add, v, addr, tid);
            a.halt();
            a.finish()
        };
        let run = |traced: bool| {
            let mut g = gpu();
            if traced {
                g.set_tracer(Some(TraceHandle::new(TraceConfig {
                    sample_every: 2,
                    ..TraceConfig::default()
                })));
            }
            g.launch(&program, &[]).unwrap()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn profiling_does_not_change_kernel_stats_and_is_ff_invariant() {
        use sparseweaver_trace::ProfileHandle;

        let program = {
            let mut a = Asm::new("profiled");
            let tid = a.reg();
            let addr = a.reg();
            let v = a.reg();
            a.csr(tid, CsrKind::GlobalTid);
            a.muli(addr, tid, 8);
            a.ldg(v, addr, 0, Width::B8);
            a.add(v, v, tid);
            a.stg(v, addr, 0, Width::B8);
            a.bar();
            a.atom(AtomOp::Add, v, addr, tid);
            a.halt();
            a.finish()
        };
        let run = |profiled: bool, fast_forward: bool| {
            let mut g = gpu();
            g.set_fast_forward(fast_forward);
            let p = profiled.then(ProfileHandle::new);
            g.set_profiler(p.clone());
            let stats = g.launch(&program, &[]).unwrap();
            (stats, p.map(|p| p.report()))
        };
        let (plain, none) = run(false, true);
        let (profiled_ff, prof_ff) = run(true, true);
        let (profiled_scan, prof_scan) = run(true, false);
        assert!(none.is_none());
        assert_eq!(plain, profiled_ff, "profiling perturbed the stats");
        assert_eq!(plain, profiled_scan);
        let (prof_ff, prof_scan) = (prof_ff.unwrap(), prof_scan.unwrap());
        // Hooks fire at issue/access time, which fast-forward replays
        // identically — the profiles must match structurally.
        assert_eq!(prof_ff, prof_scan, "profile differs under fast-forward");
        assert!(prof_ff.core_issues.iter().sum::<u64>() > 0);
        assert!(prof_ff.mem[0].count + prof_ff.mem[3].count > 0);
    }

    #[test]
    fn fast_forward_toggle_is_bit_identical() {
        // A kernel mixing memory, barrier, and atomic stalls: the
        // fast-forward cache must replay stall attribution and cycle
        // counts exactly as the per-cycle re-scan does.
        let program = {
            let mut a = Asm::new("ff_identical");
            let tid = a.reg();
            let addr = a.reg();
            let v = a.reg();
            a.csr(tid, CsrKind::GlobalTid);
            a.muli(addr, tid, 8);
            a.ldg(v, addr, 0, Width::B8);
            a.add(v, v, tid);
            a.stg(v, addr, 0, Width::B8);
            a.bar();
            a.atom(AtomOp::Add, v, addr, tid);
            a.halt();
            a.finish()
        };
        let run = |ff: bool| {
            let mut g = gpu();
            g.set_fast_forward(ff);
            let stats = g.launch(&program, &[]).unwrap();
            let words: Vec<u64> = (0..g.config().total_threads() as u64)
                .map(|t| g.mem().read(t * 8, 8))
                .collect();
            (stats, words)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn fast_forward_traces_are_identical() {
        use sparseweaver_trace::{TraceConfig, TraceHandle};

        let program = {
            let mut a = Asm::new("ff_traced");
            let tid = a.reg();
            let addr = a.reg();
            let v = a.reg();
            a.csr(tid, CsrKind::GlobalTid);
            a.muli(addr, tid, 8);
            a.ldg(v, addr, 0, Width::B8);
            a.add(v, v, tid);
            a.stg(v, addr, 0, Width::B8);
            a.bar();
            a.halt();
            a.finish()
        };
        let run = |ff: bool| {
            let mut g = gpu();
            g.set_fast_forward(ff);
            let tr = TraceHandle::new(TraceConfig {
                sample_every: 2,
                ..TraceConfig::default()
            });
            g.set_tracer(Some(tr.clone()));
            g.launch(&program, &[]).unwrap();
            let report = tr.report();
            (
                format!("{:?}", report.events),
                format!("{:?}", report.samples),
            )
        };
        assert_eq!(run(true), run(false));
    }

    /// A kernel that touches `extra` registers beyond its working set
    /// before every thread stores its global TID.
    fn hungry_tid_kernel(extra: usize) -> sparseweaver_isa::Program {
        let mut a = Asm::new("hungry_tids");
        let regs: Vec<_> = (0..extra).map(|_| a.reg()).collect();
        for (i, &r) in regs.iter().enumerate() {
            a.li(r, i as i64);
        }
        let tid = a.reg();
        let addr = a.reg();
        a.csr(tid, CsrKind::GlobalTid);
        a.muli(addr, tid, 8);
        a.stg(tid, addr, 0, Width::B8);
        a.halt();
        a.finish()
    }

    #[test]
    fn register_file_caps_resident_warps() {
        let cfg = GpuConfig::regfile_limited();
        let mut g = Gpu::new(cfg);
        g.mem_mut().grow_to(1 << 20);
        // 14 extra + tid + addr = 16 touched registers: cap = 32/16 = 2
        // of the 4 configured warps.
        let p = hungry_tid_kernel(14);
        g.launch(&p, &[]).unwrap();
        let occ = g.occupancy();
        assert_eq!(occ.kernel_high_water, 16);
        assert_eq!(occ.cap, 2);
        assert_eq!(occ.resident, 2);
        assert_eq!(occ.configured, 4);
        // The kernel saw the reduced machine: exactly
        // cores x resident x lanes global TIDs were written.
        let threads = cfg.num_cores * occ.resident * cfg.threads_per_warp;
        for t in 0..threads as u64 {
            assert_eq!(g.mem().read(t * 8, 8), t, "thread {t}");
        }
        assert_eq!(g.mem().read(threads as u64 * 8, 8), 0, "no extra thread");
    }

    #[test]
    fn uncapped_kernel_keeps_all_warps_resident() {
        let mut g = gpu();
        let p = hungry_tid_kernel(0);
        g.launch(&p, &[]).unwrap();
        let occ = g.occupancy();
        assert_eq!(occ.resident, g.config().warps_per_core);
        assert_eq!(occ.configured, g.config().warps_per_core);
        assert!(occ.kernel_high_water > 0);
    }

    #[test]
    fn kernel_over_the_per_warp_allotment_is_rejected() {
        let mut cfg = GpuConfig::small_test();
        cfg.regfile_regs_per_warp = 8;
        cfg.regs_per_core = 32;
        let mut g = Gpu::new(cfg);
        g.mem_mut().grow_to(1 << 20);
        let p = hungry_tid_kernel(14); // 16 > 8 per-warp allotment
        match g.launch(&p, &[]) {
            Err(SimError::RegisterPressure {
                high_water, limit, ..
            }) => {
                assert_eq!(high_water, 16);
                assert_eq!(limit, 8);
            }
            other => panic!("expected register-pressure error, got {other:?}"),
        }
    }

    #[test]
    fn occupancy_gauges_reach_the_trace_samples() {
        use sparseweaver_trace::{TraceConfig, TraceHandle};

        let mut g = Gpu::new(GpuConfig::regfile_limited());
        g.mem_mut().grow_to(1 << 20);
        let tr = TraceHandle::new(TraceConfig::default());
        g.set_tracer(Some(tr.clone()));
        let p = hungry_tid_kernel(14);
        g.launch(&p, &[]).unwrap();
        let report = tr.report();
        let last = report.samples.last().expect("kernel-end sample");
        assert_eq!(last.counters.kernel_high_water, 16);
        assert_eq!(last.counters.occupancy_cap, 2);
        assert_eq!(last.counters.warps_resident, 2);
        assert_eq!(last.counters.warps_configured, 4);
    }

    #[test]
    fn barriers_ignore_parked_warps() {
        // The barrier test kernel, on a capped machine: halted (parked)
        // warps must count as arrived or the barrier deadlocks.
        let mut g = Gpu::new(GpuConfig::regfile_limited());
        g.mem_mut().grow_to(1 << 20);
        let mut a = Asm::new("capped_barrier");
        let regs: Vec<_> = (0..12).map(|_| a.reg()).collect();
        for (i, &r) in regs.iter().enumerate() {
            a.li(r, i as i64);
        }
        let wid = a.reg();
        let addr = a.reg();
        let v = a.reg();
        a.csr(wid, CsrKind::WarpId);
        a.li(addr, 0);
        let skip = a.reg();
        a.seqi(skip, wid, 0);
        a.if_nonzero(skip, |a| {
            let c = a.reg();
            a.li(c, 42);
            a.sts(c, addr, 0, Width::B8);
            a.free(c);
        });
        a.bar();
        a.lds(v, addr, 0, Width::B8);
        let out = a.reg();
        a.csr(out, CsrKind::GlobalTid);
        a.muli(out, out, 8);
        a.stg(v, out, 0, Width::B8);
        a.halt();
        let p = a.finish();
        g.launch(&p, &[]).unwrap();
        let occ = g.occupancy();
        assert!(
            occ.resident < g.config().warps_per_core,
            "test needs a binding cap (hw {})",
            occ.kernel_high_water
        );
        let threads = g.config().num_cores * occ.resident * g.config().threads_per_warp;
        for t in 0..threads as u64 {
            assert_eq!(g.mem().read(t * 8, 8), 42, "thread {t}");
        }
    }

    #[test]
    fn save_restore_between_launches_is_bit_identical() {
        // An iterative kernel whose behavior depends on memory left by the
        // previous launch and on warm caches: run 4 launches straight,
        // versus 2 launches, checkpoint, restore into a fresh machine, and
        // run the remaining 2. Stats and memory must match exactly.
        let program = {
            let mut a = Asm::new("iterate");
            let tid = a.reg();
            let addr = a.reg();
            let v = a.reg();
            a.csr(tid, CsrKind::GlobalTid);
            a.muli(addr, tid, 8);
            a.ldg(v, addr, 0, Width::B8);
            a.add(v, v, tid);
            a.stg(v, addr, 0, Width::B8);
            a.bar();
            a.atom(AtomOp::Add, v, addr, tid);
            a.halt();
            a.finish()
        };
        let mut straight = gpu();
        let mut straight_stats = Vec::new();
        for _ in 0..4 {
            straight_stats.push(straight.launch(&program, &[]).unwrap());
        }

        let mut first = gpu();
        let mut resumed_stats = Vec::new();
        for _ in 0..2 {
            resumed_stats.push(first.launch(&program, &[]).unwrap());
        }
        let state = first.save_state();
        drop(first);
        let mut second = gpu();
        second.restore_state(&state).unwrap();
        // The snapshot round-trips exactly.
        assert_eq!(second.save_state(), state);
        for _ in 0..2 {
            resumed_stats.push(second.launch(&program, &[]).unwrap());
        }

        assert_eq!(straight_stats, resumed_stats);
        assert_eq!(straight.mem_stats(), second.mem_stats());
        assert_eq!(straight.mem().traffic(), second.mem().traffic());
        for t in 0..straight.config().total_threads() as u64 {
            assert_eq!(straight.mem().read(t * 8, 8), second.mem().read(t * 8, 8));
        }
    }

    #[test]
    fn restore_rejects_shape_mismatch() {
        let g = gpu();
        let mut state = g.save_state();
        state.cores.pop();
        let mut h = gpu();
        assert!(h.restore_state(&state).is_err());
    }

    #[test]
    fn cycle_limit_enforced() {
        let mut cfg = GpuConfig::small_test();
        cfg.max_cycles = 50;
        let mut g = Gpu::new(cfg);
        let mut a = Asm::new("spin");
        let top = a.new_label();
        a.bind(top);
        a.nop();
        a.jmp(top);
        let p = a.finish();
        match g.launch(&p, &[]) {
            Err(SimError::CycleLimit { .. }) => {}
            other => panic!("expected cycle limit, got {other:?}"),
        }
    }
}
