//! Kernel statistics: cycles, stall breakdown, phase attribution.

use sparseweaver_mem::LevelStats;

// One definition shared with the trace-event taxonomy: the statistics
// below and the tracer's phase-cycle series index the same enum.
pub use sparseweaver_trace::Phase;

/// Core-cycle stall attribution, mirroring the Nsight categories the paper
/// lists under Fig. 4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StallBreakdown {
    /// Waiting on a global-memory load result ("Memory / long scoreboard").
    pub memory: u64,
    /// Waiting on a shared-memory result ("Shared / short scoreboard").
    pub shared: u64,
    /// Waiting on an ALU/FPU result ("Execution dependency / Wait").
    pub exec_dep: u64,
    /// L1 port-contention delay ("LG throttle"), summed over *accesses* —
    /// different units than the issue-slot categories, so it is excluded
    /// from [`StallBreakdown::total`] and best read per access.
    pub l1_queue: u64,
    /// Warp-cycles parked at a barrier — counted per *warp*, not per
    /// issue slot (a parked warp does not block other warps from
    /// issuing), so it is excluded from [`StallBreakdown::total`].
    pub barrier: u64,
    /// Waiting on a Weaver/EGHW unit response.
    pub weaver: u64,
}

impl StallBreakdown {
    /// Total issue-slot stall cycles (excludes the per-access
    /// [`StallBreakdown::l1_queue`] counter and the per-warp
    /// [`StallBreakdown::barrier`] counter).
    pub fn total(&self) -> u64 {
        self.memory + self.shared + self.exec_dep + self.weaver
    }

    /// Accumulates another breakdown.
    pub fn add(&mut self, other: &StallBreakdown) {
        self.memory += other.memory;
        self.shared += other.shared;
        self.exec_dep += other.exec_dep;
        self.l1_queue += other.l1_queue;
        self.barrier += other.barrier;
        self.weaver += other.weaver;
    }
}

/// What kind of producer a scoreboard entry is waiting on (drives stall
/// attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PendKind {
    /// Nothing pending.
    #[default]
    None,
    /// Global memory load/atomic.
    Memory,
    /// Shared-memory access.
    Shared,
    /// ALU/FPU result.
    Exec,
    /// Weaver/EGHW response.
    Weaver,
}

impl PendKind {
    /// A stable index for checkpoint encoding.
    pub fn kind_id(self) -> u8 {
        match self {
            PendKind::None => 0,
            PendKind::Memory => 1,
            PendKind::Shared => 2,
            PendKind::Exec => 3,
            PendKind::Weaver => 4,
        }
    }

    /// The inverse of [`PendKind::kind_id`]; `None` for unknown ids
    /// (a corrupt checkpoint).
    pub fn from_id(id: u8) -> Option<Self> {
        Some(match id {
            0 => PendKind::None,
            1 => PendKind::Memory,
            2 => PendKind::Shared,
            3 => PendKind::Exec,
            4 => PendKind::Weaver,
            _ => return None,
        })
    }
}

/// Statistics for one kernel launch (or an accumulation of launches).
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KernelStats {
    /// Wall-clock cycles (max over cores).
    pub cycles: u64,
    /// Warp-instructions issued.
    pub instructions: u64,
    /// Thread-instructions executed (issued x active lanes).
    pub thread_instructions: u64,
    /// Stall attribution in core-cycles.
    pub stalls: StallBreakdown,
    /// Core-cycles attributed to each [`Phase`].
    pub phase_cycles: [u64; Phase::COUNT],
    /// Memory hierarchy activity during the launch.
    pub mem: LevelStats,
    /// Weaver counters: `(st_fetches, dec_requests, registrations)`.
    pub weaver_counters: (u64, u64, u64),
    /// Sum over cycles of non-halted warps (for warp/instruction metrics).
    pub warp_cycles: u64,
    /// Number of kernel launches folded into these stats.
    pub launches: u64,
}

impl KernelStats {
    /// Average number of resident (non-halted) warps per issued
    /// instruction — the "Warp/Instruction" metric of Fig. 4.
    pub fn warps_per_instruction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.warp_cycles as f64 / self.instructions as f64
        }
    }

    /// Issue efficiency: instructions per core-cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Folds another launch's stats into this accumulation: cycles add
    /// (sequential launches), counters add.
    pub fn accumulate(&mut self, other: &KernelStats) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.thread_instructions += other.thread_instructions;
        self.stalls.add(&other.stalls);
        for i in 0..Phase::COUNT {
            self.phase_cycles[i] += other.phase_cycles[i];
        }
        self.mem.add(&other.mem);
        self.weaver_counters.0 += other.weaver_counters.0;
        self.weaver_counters.1 += other.weaver_counters.1;
        self.weaver_counters.2 += other.weaver_counters.2;
        self.warp_cycles += other.warp_cycles;
        self.launches += other.launches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals() {
        let b = StallBreakdown {
            memory: 5,
            shared: 1,
            exec_dep: 2,
            l1_queue: 3,
            barrier: 4,
            weaver: 6,
        };
        // l1_queue (3, per-access) and barrier (4, per-warp) are excluded.
        assert_eq!(b.total(), 14);
        let mut c = b;
        c.add(&b);
        assert_eq!(c.total(), 28);
        assert_eq!(c.l1_queue, 6);
        assert_eq!(c.barrier, 8);
    }

    #[test]
    fn metrics_guard_division_by_zero() {
        let s = KernelStats::default();
        assert_eq!(s.warps_per_instruction(), 0.0);
        assert_eq!(s.ipc(), 0.0);
    }

    #[test]
    fn accumulate_adds_everything() {
        let mut a = KernelStats {
            cycles: 10,
            instructions: 5,
            launches: 1,
            ..KernelStats::default()
        };
        let b = a.clone();
        a.accumulate(&b);
        assert_eq!(a.cycles, 20);
        assert_eq!(a.instructions, 10);
        assert_eq!(a.launches, 2);
    }

    #[test]
    fn phase_labels() {
        assert_eq!(Phase::EdgeSchedule.label(), "Work ID calc");
        assert_eq!(Phase::ALL.len(), Phase::COUNT);
    }

    #[test]
    fn accumulate_keeps_l3_stats() {
        use sparseweaver_mem::CacheStats;

        // Launches on an L3-configured GPU must not lose their L3 activity
        // when folded into a run-level accumulation that started without.
        let mut total = KernelStats::default();
        let launch = KernelStats {
            mem: sparseweaver_mem::LevelStats {
                l3: Some(CacheStats {
                    accesses: 12,
                    hits: 9,
                    misses: 3,
                    writebacks: 1,
                }),
                ..Default::default()
            },
            ..KernelStats::default()
        };
        total.accumulate(&launch);
        total.accumulate(&launch);
        let l3 = total.mem.l3.expect("L3 stats preserved");
        assert_eq!(l3.accesses, 24);
        assert_eq!(l3.hits, 18);
        assert_eq!(l3.writebacks, 2);
    }
}
