//! One SIMT core: warp scheduler, instruction execution, barriers,
//! shared memory, and the Weaver/EGHW functional-unit port.

use sparseweaver_fault::FaultHandle;
use sparseweaver_isa::{
    DecodedInstr, DecodedProgram, Instr, Program, Space, VoteOp, Width, NUM_REGS,
};
use sparseweaver_mem::{Hierarchy, MainMemory, MemRecorderHandle};
use sparseweaver_trace::{Category, EventData, ProfileHandle, TraceHandle};
use sparseweaver_weaver::eghw::{EghwLayout, EghwUnit};
use sparseweaver_weaver::{WeaverUnit, EMPTY_WORK_ID};

use sparseweaver_weaver::eghw::EghwState;
use sparseweaver_weaver::WeaverUnitState;

use crate::config::{GpuConfig, WeaverMode};
use crate::stats::{PendKind, Phase, StallBreakdown};
use crate::warp::{full_mask, lanes_of, SimtEntry, Warp, WarpSnapshot, WarpState};
use crate::SimError;

/// Why a core could not issue this cycle, and when it can retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blocked {
    /// Earliest cycle at which some warp becomes ready (`u64::MAX` when
    /// progress depends on an event such as a barrier release).
    pub next_ready: u64,
    /// The producer the soonest-ready warp is waiting on.
    pub reason: PendKind,
    /// Whether the block is a barrier wait.
    pub barrier: bool,
    /// Phase of the blocking warp (for Fig. 17/18 attribution).
    pub phase: Phase,
}

/// Outcome of one issue attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueOutcome {
    /// An instruction was issued.
    Issued,
    /// No warp was ready.
    Blocked(Blocked),
    /// All warps have halted.
    Finished,
}

/// One issued instruction, as recorded by the tracer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Issue cycle.
    pub cycle: u64,
    /// Core index.
    pub core: usize,
    /// Warp index within the core.
    pub warp: usize,
    /// Program counter of the issued instruction.
    pub pc: u32,
    /// The instruction.
    pub instr: Instr,
    /// Active lane mask at issue.
    pub active: u64,
}

/// Per-core counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreStats {
    /// Warp-instructions issued.
    pub instructions: u64,
    /// Thread-instructions (issued x active lanes).
    pub thread_instructions: u64,
    /// Stall attribution.
    pub stalls: StallBreakdown,
    /// Core-cycles per phase (issue + stall cycles).
    pub phase_cycles: [u64; Phase::COUNT],
    /// Finish cycle of this core for the current launch.
    pub finish_cycle: u64,
}

/// A complete snapshot of one core's mutable state. The debugging-only
/// per-instruction trace buffer ([`Core::enable_trace`]) is not part of
/// the snapshot; it is cleared at every launch anyway.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreState {
    /// All warp contexts, in warp order.
    pub warps: Vec<WarpSnapshot>,
    /// Scratchpad memory contents.
    pub shared_data: Vec<u8>,
    /// Scratchpad `(reads, writes)` traffic counters.
    pub shared_traffic: (u64, u64),
    /// The Weaver unit.
    pub weaver: WeaverUnitState,
    /// The EGHW baseline unit.
    pub eghw: EghwState,
    /// EGHW per-warp DT mirror rows.
    pub eghw_dt: Vec<Vec<i64>>,
    /// Round-robin scheduler cursor.
    pub next_warp: u64,
    /// Non-halted warp count.
    pub resident: u64,
    /// Warps participating in the current launch.
    pub active_warps: u64,
    /// Per-launch counters.
    pub stats: CoreStats,
}

/// One SIMT core.
#[derive(Debug)]
pub struct Core {
    id: usize,
    warps: Vec<Warp>,
    /// Scratchpad ("shared") memory, byte-addressed from 0.
    pub shared: MainMemory,
    /// The Weaver functional unit.
    pub weaver: WeaverUnit,
    /// The EGHW baseline unit.
    pub eghw: EghwUnit,
    eghw_dt: Vec<Vec<i64>>,
    next_warp: usize,
    resident: usize,
    /// Warps participating in the current launch (the rest are parked by
    /// the register-file occupancy cap and stay halted throughout).
    active_warps: usize,
    /// Counters for the current launch.
    pub stats: CoreStats,
    trace: Option<(Vec<TraceRecord>, usize)>,
    tracer: Option<TraceHandle>,
    profiler: Option<ProfileHandle>,
    recorder: Option<MemRecorderHandle>,
    fault: Option<FaultHandle>,
    /// Cached `spec.fetch_rate > 0` / `spec.reg_rate > 0`, so the
    /// fault-free hot path pays no per-instruction borrow.
    fault_fetch: bool,
    fault_reg: bool,
    lanes: usize,
    shared_latency: u64,
    alu_latency: u64,
    fpu_latency: u64,
    weaver_mode: WeaverMode,
    auto_mask: bool,
}

impl Core {
    /// Builds core `id` from the machine configuration.
    pub fn new(id: usize, cfg: &GpuConfig) -> Self {
        Core {
            id,
            warps: (0..cfg.warps_per_core)
                .map(|_| Warp::new(cfg.threads_per_warp))
                .collect(),
            shared: MainMemory::new(cfg.shared_mem_bytes),
            weaver: WeaverUnit::new(cfg.weaver, cfg.warps_per_core, cfg.threads_per_warp),
            eghw: EghwUnit::new(cfg.warps_per_core, cfg.threads_per_warp),
            eghw_dt: vec![vec![EMPTY_WORK_ID; cfg.threads_per_warp]; cfg.warps_per_core],
            next_warp: 0,
            resident: cfg.warps_per_core,
            active_warps: cfg.warps_per_core,
            stats: CoreStats::default(),
            trace: None,
            tracer: None,
            profiler: None,
            recorder: None,
            fault: None,
            fault_fetch: false,
            fault_reg: false,
            lanes: cfg.threads_per_warp,
            shared_latency: cfg.shared_latency,
            alu_latency: cfg.alu_latency,
            fpu_latency: cfg.fpu_latency,
            weaver_mode: cfg.weaver_mode,
            auto_mask: cfg.weaver.auto_mask,
        }
    }

    /// Core index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of non-halted warps.
    pub fn resident_warps(&self) -> usize {
        self.resident
    }

    /// Whether every warp has halted.
    pub fn finished(&self) -> bool {
        self.resident == 0
    }

    /// Number of warps currently parked at the barrier.
    pub fn warps_at_barrier(&self) -> usize {
        self.warps
            .iter()
            .filter(|w| w.state == WarpState::AtBarrier)
            .count()
    }

    /// Installs the EGHW graph layout for the next launch.
    pub fn set_eghw_layout(&mut self, layout: EghwLayout) {
        self.eghw.set_layout(layout);
    }

    /// Attaches (or detaches) a structured-event tracer; the handle is
    /// forwarded to the core's Weaver unit. With a handle attached, the
    /// core emits warp issues, phase boundaries, and divergence events.
    pub fn set_tracer(&mut self, tracer: Option<TraceHandle>) {
        self.weaver.set_tracer(tracer.clone(), self.id as u32);
        self.tracer = tracer;
    }

    /// Attaches (or detaches) a latency profiler. With a handle attached,
    /// the core records per-warp issues and `WEAVER_DEC_ID`
    /// request→response latencies; with `None`, the hooks are single
    /// `Option` branches and the cycle model is untouched.
    pub fn set_profiler(&mut self, profiler: Option<ProfileHandle>) {
        self.profiler = profiler;
    }

    /// Attaches (or detaches) a memory-trace recorder. The core's share
    /// of the capture is context, not accesses: it stamps the executing
    /// warp before each instruction (the hierarchy hooks don't know the
    /// requester's warp) and records barrier arrivals.
    pub fn set_mem_recorder(&mut self, recorder: Option<MemRecorderHandle>) {
        self.recorder = recorder;
    }

    /// Attaches (or detaches) the fault injector; the handle is forwarded
    /// to the core's Weaver unit for the protocol sites.
    pub fn set_fault_injector(&mut self, fault: Option<FaultHandle>) {
        self.weaver.set_fault_injector(fault.clone());
        let spec = fault.as_ref().map(|f| f.spec());
        self.fault_fetch = spec.is_some_and(|s| s.fetch_rate > 0.0);
        self.fault_reg = spec.is_some_and(|s| s.reg_rate > 0.0);
        self.fault = fault;
    }

    /// A structured snapshot of this core for a [`crate::HangReport`].
    pub fn hang_state(&self, cycle: u64) -> crate::hang::CoreHang {
        let warps = self
            .warps
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let (next_ready, waiting_on) = match w.soonest_pending(cycle) {
                    Some((t, k)) => (
                        t,
                        match k {
                            PendKind::Memory => "memory",
                            PendKind::Shared => "shared",
                            PendKind::Weaver => "weaver",
                            PendKind::Exec => "exec",
                            PendKind::None => "none",
                        },
                    ),
                    None => (0, "none"),
                };
                crate::hang::WarpHang {
                    warp: i,
                    pc: w.pc,
                    state: match w.state {
                        WarpState::Running => "running",
                        WarpState::AtBarrier => "at_barrier",
                        WarpState::Halted => "halted",
                    }
                    .to_string(),
                    active_mask: w.active,
                    stack_depth: w.simt.len(),
                    waiting_on: waiting_on.to_string(),
                    next_ready,
                }
            })
            .collect();
        crate::hang::CoreHang {
            core: self.id,
            resident_warps: self.resident,
            barrier_arrivals: self.warps_at_barrier(),
            weaver_fsm_state: self.weaver.fsm_state_id(),
            warps,
        }
    }

    /// Enables instruction tracing: up to `cap` issued instructions are
    /// recorded per launch (tracing survives launches until disabled).
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace = Some((Vec::new(), cap));
    }

    /// Disables tracing and returns whatever was recorded.
    pub fn take_trace(&mut self) -> Vec<TraceRecord> {
        self.trace.take().map(|(v, _)| v).unwrap_or_default()
    }

    /// Warps taking part in the current launch. Below the physical warp
    /// count when the register-file occupancy cap parked the rest.
    pub fn active_warps(&self) -> usize {
        self.active_warps
    }

    /// Resets warps and counters for a new launch (units keep their
    /// configuration; tables are cleared).
    ///
    /// Only the first `resident` warps participate; the remainder are
    /// parked as halted for the whole launch — the register file cannot
    /// hold their contexts. Parked warps count as arrived at barriers
    /// (like any halted warp) and are excluded from the thread-geometry
    /// CSRs, so kernels see a machine with `resident` warps per core.
    pub fn reset_for_launch(&mut self, resident: usize) {
        let resident = resident.clamp(1, self.warps.len());
        for w in &mut self.warps {
            w.reset();
        }
        for w in &mut self.warps[resident..] {
            w.state = WarpState::Halted;
        }
        self.shared.reset_traffic();
        self.next_warp = 0;
        self.resident = resident;
        self.active_warps = resident;
        self.stats = CoreStats::default();
        self.weaver.reset();
        self.eghw.reset();
        if let Some((records, _)) = &mut self.trace {
            records.clear();
        }
        for row in &mut self.eghw_dt {
            row.iter_mut().for_each(|e| *e = EMPTY_WORK_ID);
        }
    }

    /// Captures the complete mutable state for checkpointing.
    pub fn save_state(&self) -> CoreState {
        CoreState {
            warps: self.warps.iter().map(Warp::save_state).collect(),
            shared_data: self.shared.bytes().to_vec(),
            shared_traffic: self.shared.traffic(),
            weaver: self.weaver.save_state(),
            eghw: self.eghw.save_state(),
            eghw_dt: self.eghw_dt.clone(),
            next_warp: self.next_warp as u64,
            resident: self.resident as u64,
            active_warps: self.active_warps as u64,
            stats: self.stats.clone(),
        }
    }

    /// Restores state captured with [`Core::save_state`] into a core built
    /// from the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch if the snapshot's shape does
    /// not match this core's configuration.
    pub fn restore_state(&mut self, state: &CoreState) -> Result<(), String> {
        if state.warps.len() != self.warps.len() {
            return Err(format!(
                "core snapshot has {} warps, configuration needs {}",
                state.warps.len(),
                self.warps.len()
            ));
        }
        if state.eghw_dt.len() != self.eghw_dt.len()
            || state.eghw_dt.iter().any(|r| r.len() != self.lanes)
        {
            return Err("core snapshot EGHW DT shape mismatch".into());
        }
        for (i, (warp, snap)) in self.warps.iter_mut().zip(&state.warps).enumerate() {
            warp.restore_state(snap)
                .map_err(|e| format!("warp {i}: {e}"))?;
        }
        self.weaver
            .restore_state(&state.weaver)
            .map_err(|e| format!("weaver: {e}"))?;
        self.eghw
            .restore_state(&state.eghw)
            .map_err(|e| format!("eghw: {e}"))?;
        self.shared.restore_contents(&state.shared_data);
        self.shared
            .restore_traffic(state.shared_traffic.0, state.shared_traffic.1);
        self.eghw_dt.clone_from(&state.eghw_dt);
        self.next_warp = state.next_warp as usize;
        self.resident = state.resident as usize;
        self.active_warps = state.active_warps as usize;
        self.stats = state.stats.clone();
        Ok(())
    }

    fn maybe_release_barrier(&mut self) {
        let any_waiting = self.warps.iter().any(|w| w.state == WarpState::AtBarrier);
        if !any_waiting {
            return;
        }
        let all_parked = self
            .warps
            .iter()
            .all(|w| matches!(w.state, WarpState::AtBarrier | WarpState::Halted));
        if all_parked {
            for w in &mut self.warps {
                if w.state == WarpState::AtBarrier {
                    w.state = WarpState::Running;
                }
            }
        }
    }

    fn halt_warp(&mut self, warp: usize) {
        if self.warps[warp].state != WarpState::Halted {
            self.warps[warp].state = WarpState::Halted;
            self.resident -= 1;
            self.maybe_release_barrier();
        }
    }

    /// Consumes zero-cost `Phase` markers and returns the warp's next real
    /// instruction, halting the warp if it runs off the end.
    fn resolve_front<'p>(
        &mut self,
        warp: usize,
        decoded: &'p DecodedProgram,
        cycle: u64,
    ) -> Option<&'p DecodedInstr> {
        loop {
            if self.warps[warp].state != WarpState::Running {
                return None;
            }
            match decoded.get(self.warps[warp].pc) {
                None => {
                    self.halt_warp(warp);
                    return None;
                }
                Some(d) if !matches!(d.instr, Instr::Phase(_)) => return Some(d),
                Some(d) => {
                    let Instr::Phase(p) = d.instr else {
                        unreachable!()
                    };
                    let phase = match p {
                        0 => Phase::Init,
                        1 => Phase::Registration,
                        2 => Phase::EdgeSchedule,
                        3 => Phase::EdgeInfoAccess,
                        4 => Phase::GatherSum,
                        _ => Phase::Other,
                    };
                    if self.warps[warp].phase != phase {
                        if let Some(tr) = &self.tracer {
                            tr.emit(
                                cycle,
                                self.id as u32,
                                EventData::PhaseBegin {
                                    warp: warp as u32,
                                    phase,
                                },
                            );
                        }
                    }
                    self.warps[warp].phase = phase;
                    self.warps[warp].pc += 1;
                }
            }
        }
    }

    /// Attempts to issue one instruction at `cycle`.
    ///
    /// # Errors
    ///
    /// Propagates kernel bugs surfaced by the machine model (divergent
    /// uniform branches, unbalanced joins).
    #[allow(clippy::too_many_arguments)]
    pub fn try_issue(
        &mut self,
        cycle: u64,
        program: &Program,
        decoded: &DecodedProgram,
        args: &[u64],
        hier: &mut Hierarchy,
        mem: &mut MainMemory,
        num_cores: usize,
    ) -> Result<IssueOutcome, SimError> {
        if self.finished() {
            return Ok(IssueOutcome::Finished);
        }
        let n = self.warps.len();
        // Round-robin scan for a ready warp.
        for i in 0..n {
            let w = (self.next_warp + i) % n;
            let Some(d) = self.resolve_front(w, decoded, cycle) else {
                continue;
            };
            // Scoreboard: all sources and the destination must be ready
            // (operands come pre-extracted from the decoded cache, so this
            // check allocates nothing).
            let ready = d.regs().all(|r| self.warps[w].reg_ready(r, cycle));
            if !ready {
                continue;
            }
            let instr = d.instr;
            if let Some((records, cap)) = &mut self.trace {
                if records.len() < *cap {
                    records.push(TraceRecord {
                        cycle,
                        core: self.id,
                        warp: w,
                        pc: self.warps[w].pc,
                        instr,
                        active: self.warps[w].active,
                    });
                }
            }
            if let Some(tr) = &self.tracer {
                if tr.enabled(Category::Warp) {
                    tr.emit(
                        cycle,
                        self.id as u32,
                        EventData::WarpIssue {
                            warp: w as u32,
                            pc: self.warps[w].pc,
                            active: self.warps[w].active_count(),
                        },
                    );
                }
            }
            if let Some(p) = &self.profiler {
                p.warp_issue(self.id, w);
            }
            let instr = self.fetch_with_faults(instr, w, program)?;
            self.exec(w, instr, cycle, args, hier, mem, num_cores, program)?;
            self.next_warp = (w + 1) % n;
            self.stats.instructions += 1;
            self.stats.phase_cycles[self.warps[w].phase as usize] += 1;
            return Ok(IssueOutcome::Issued);
        }
        if self.finished() {
            return Ok(IssueOutcome::Finished);
        }
        // Blocked: find the soonest-ready running warp.
        let mut best: Option<(u64, PendKind, Phase)> = None;
        for w in &self.warps {
            if w.state != WarpState::Running {
                continue;
            }
            let Some(d) = decoded.get(w.pc) else {
                continue;
            };
            let mut when = 0u64;
            let mut kind = PendKind::Exec;
            for r in d.regs() {
                let (t, k) = w.reg_pending(r);
                if t > when {
                    when = t;
                    kind = k;
                }
            }
            if best.is_none_or(|(t, _, _)| when < t) {
                best = Some((when, kind, w.phase));
            }
        }
        let blocked = match best {
            Some((when, kind, phase)) => Blocked {
                next_ready: when.max(cycle + 1),
                reason: kind,
                barrier: false,
                phase,
            },
            None => {
                // Only barrier-parked warps remain runnable-later.
                let phase = self
                    .warps
                    .iter()
                    .find(|w| w.state == WarpState::AtBarrier)
                    .map(|w| w.phase)
                    .unwrap_or(Phase::Other);
                Blocked {
                    next_ready: u64::MAX,
                    reason: PendKind::None,
                    barrier: true,
                    phase,
                }
            }
        };
        Ok(IssueOutcome::Blocked(blocked))
    }

    /// Models a transient bit flip between I-cache and decode: the fetched
    /// instruction is re-encoded, one bit of its 32-bit word may flip, and
    /// the corrupt word is decoded again. A word that no longer decodes is
    /// an [`SimError::IllegalInstruction`] (detected crash); one that still
    /// decodes executes as the mutated instruction.
    fn fetch_with_faults(
        &mut self,
        instr: Instr,
        w: usize,
        program: &Program,
    ) -> Result<Instr, SimError> {
        if !self.fault_fetch {
            return Ok(instr);
        }
        let Some(f) = &self.fault else {
            return Ok(instr);
        };
        let (word, payload) = sparseweaver_isa::encode::encode_instr(&instr);
        let corrupt = f.with(|i| i.corrupt_fetch(word));
        if corrupt == word {
            return Ok(instr);
        }
        sparseweaver_isa::encode::decode_instr(corrupt, payload).map_err(|_| {
            SimError::IllegalInstruction {
                kernel: program.name().to_string(),
                pc: self.warps[w].pc,
                word: corrupt,
            }
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn exec(
        &mut self,
        w: usize,
        instr: Instr,
        cycle: u64,
        args: &[u64],
        hier: &mut Hierarchy,
        mem: &mut MainMemory,
        num_cores: usize,
        program: &Program,
    ) -> Result<(), SimError> {
        use sparseweaver_isa::CsrKind;

        let lanes = self.lanes;
        let core_id = self.id;
        self.stats.thread_instructions += self.warps[w].active_count() as u64;
        if let Some(r) = &self.recorder {
            r.set_warp(w as u32);
        }
        // Transient register-file upset: one bit of one register word of
        // the executing warp may flip, visible to all subsequent reads.
        if self.fault_reg {
            if let Some(f) = &self.fault {
                if let Some((lane, reg, bit)) =
                    f.with(|i| i.reg_event(lanes as u64, NUM_REGS as u64))
                {
                    self.warps[w].flip_bit(lane, reg, bit);
                }
            }
        }
        let warp = &mut self.warps[w];
        warp.pc += 1;

        match instr {
            Instr::Nop | Instr::Phase(_) => {}
            Instr::Halt => {
                self.halt_warp(w);
            }
            Instr::Bar => {
                if let Some(r) = &self.recorder {
                    r.barrier(core_id, w as u32, cycle);
                }
                self.warps[w].state = WarpState::AtBarrier;
                self.maybe_release_barrier();
            }
            Instr::LdImm { rd, imm } => {
                for l in lanes_of(warp.active) {
                    warp.write(l, rd, imm as u64);
                }
                warp.set_pending(rd, cycle + self.alu_latency, PendKind::Exec);
            }
            Instr::Alu { op, rd, rs1, rs2 } => {
                for l in lanes_of(warp.active) {
                    let v = op.apply(warp.read(l, rs1), warp.read(l, rs2));
                    warp.write(l, rd, v);
                }
                warp.set_pending(rd, cycle + self.alu_latency, PendKind::Exec);
            }
            Instr::AluI { op, rd, rs1, imm } => {
                for l in lanes_of(warp.active) {
                    let v = op.apply(warp.read(l, rs1), imm as u64);
                    warp.write(l, rd, v);
                }
                warp.set_pending(rd, cycle + self.alu_latency, PendKind::Exec);
            }
            Instr::Fpu { op, rd, rs1, rs2 } => {
                for l in lanes_of(warp.active) {
                    let v = op.apply(warp.read(l, rs1), warp.read(l, rs2));
                    warp.write(l, rd, v);
                }
                warp.set_pending(rd, cycle + self.fpu_latency, PendKind::Exec);
            }
            Instr::FCmp { op, rd, rs1, rs2 } => {
                for l in lanes_of(warp.active) {
                    let v = op.apply(warp.read(l, rs1), warp.read(l, rs2));
                    warp.write(l, rd, v);
                }
                warp.set_pending(rd, cycle + self.fpu_latency, PendKind::Exec);
            }
            Instr::CvtIF { rd, rs1 } => {
                for l in lanes_of(warp.active) {
                    let v = (warp.read(l, rs1) as i64) as f64;
                    warp.write(l, rd, v.to_bits());
                }
                warp.set_pending(rd, cycle + self.fpu_latency, PendKind::Exec);
            }
            Instr::CvtFI { rd, rs1 } => {
                for l in lanes_of(warp.active) {
                    let v = f64::from_bits(warp.read(l, rs1)) as i64;
                    warp.write(l, rd, v as u64);
                }
                warp.set_pending(rd, cycle + self.fpu_latency, PendKind::Exec);
            }
            Instr::Csr { rd, kind } => {
                // Geometry reflects *resident* warps: a parked warp must
                // not widen the kernel's iteration space, or its share of
                // the work would silently go undone.
                let wpc = self.active_warps;
                let warp = &mut self.warps[w];
                for l in 0..lanes {
                    let v = match kind {
                        CsrKind::LaneId => l as u64,
                        CsrKind::WarpId => w as u64,
                        CsrKind::CoreId => core_id as u64,
                        CsrKind::GlobalTid => (core_id * wpc * lanes + w * lanes + l) as u64,
                        CsrKind::CoreTid => (w * lanes + l) as u64,
                        CsrKind::NumCores => num_cores as u64,
                        CsrKind::WarpsPerCore => wpc as u64,
                        CsrKind::ThreadsPerWarp => lanes as u64,
                        CsrKind::ThreadsPerCore => (wpc * lanes) as u64,
                        CsrKind::NumThreads => (num_cores * wpc * lanes) as u64,
                    };
                    warp.write(l, rd, v);
                }
                warp.set_pending(rd, cycle + self.alu_latency, PendKind::Exec);
            }
            Instr::LdArg { rd, idx } => {
                let v = args.get(idx as usize).copied().unwrap_or(0);
                for l in 0..lanes {
                    warp.write(l, rd, v);
                }
                warp.set_pending(rd, cycle + self.alu_latency, PendKind::Exec);
            }
            Instr::Ld {
                rd,
                addr,
                offset,
                width,
                space,
            } => {
                self.exec_load(w, rd, addr, offset, width, space, cycle, hier, mem, program)?;
            }
            Instr::St {
                src,
                addr,
                offset,
                width,
                space,
            } => {
                self.exec_store(
                    w, src, addr, offset, width, space, cycle, hier, mem, program,
                )?;
            }
            Instr::Atom {
                op,
                rd,
                addr,
                src,
                space,
            } => {
                let mask = warp.active;
                let mut max_done = cycle;
                match space {
                    Space::Global => {
                        for l in lanes_of(mask) {
                            let a = self.warps[w].read(l, addr);
                            let operand = self.warps[w].read(l, src);
                            let r = hier.atomic(core_id, a, cycle);
                            max_done = max_done.max(cycle + r.latency);
                            let old = mem.try_read(a, 8).map_err(|e| mem_fault(program, &e))?;
                            mem.try_write(a, op.combine(old, operand), 8)
                                .map_err(|e| mem_fault(program, &e))?;
                            self.warps[w].write(l, rd, old);
                        }
                        self.warps[w].set_pending(rd, max_done, PendKind::Memory);
                    }
                    Space::Shared => {
                        // Scratchpad atomics: serialized lane by lane at
                        // shared-memory latency (bank conflicts on the
                        // same counter are the realistic cost).
                        for (i, l) in lanes_of(mask).enumerate() {
                            let a = self.warps[w].read(l, addr);
                            let operand = self.warps[w].read(l, src);
                            let old = self
                                .shared
                                .try_read(a, 8)
                                .map_err(|e| mem_fault(program, &e))?;
                            self.shared
                                .try_write(a, op.combine(old, operand), 8)
                                .map_err(|e| mem_fault(program, &e))?;
                            self.warps[w].write(l, rd, old);
                            max_done = max_done.max(cycle + self.shared_latency + i as u64);
                        }
                        self.warps[w].set_pending(rd, max_done, PendKind::Shared);
                    }
                }
            }
            Instr::Br {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let mut taken: Option<bool> = None;
                for l in lanes_of(warp.active) {
                    let t = cond.eval(warp.read(l, rs1), warp.read(l, rs2));
                    match taken {
                        None => taken = Some(t),
                        Some(prev) if prev != t => {
                            return Err(SimError::DivergentBranch {
                                kernel: program.name().to_string(),
                                pc: warp.pc - 1,
                            })
                        }
                        _ => {}
                    }
                }
                if taken.unwrap_or(false) {
                    warp.pc = target;
                }
            }
            Instr::Jmp { target } => {
                warp.pc = target;
            }
            Instr::Split {
                rs1,
                else_target,
                end_target,
            } => {
                let split_pc = warp.pc - 1;
                let m = warp.active;
                let mut t = 0u64;
                for l in lanes_of(warp.active) {
                    if warp.read(l, rs1) != 0 {
                        t |= 1 << l;
                    }
                }
                let f = m & !t;
                let mut entry = SimtEntry {
                    saved_mask: m,
                    else_mask: f,
                    else_pc: else_target,
                    end_pc: end_target,
                    in_else: false,
                };
                if t != 0 {
                    warp.active = t;
                } else {
                    entry.in_else = true;
                    warp.active = f;
                    warp.pc = else_target;
                }
                warp.simt.push(entry);
                // A split only diverges when both sides have lanes.
                if t != 0 && f != 0 {
                    if let Some(tr) = &self.tracer {
                        tr.emit(
                            cycle,
                            core_id as u32,
                            EventData::Divergence {
                                warp: w as u32,
                                pc: split_pc,
                                taken: t.count_ones(),
                                not_taken: f.count_ones(),
                            },
                        );
                    }
                }
            }
            Instr::Join => {
                let Some(top) = warp.simt.last_mut() else {
                    return Err(SimError::UnbalancedJoin {
                        kernel: program.name().to_string(),
                        pc: warp.pc - 1,
                    });
                };
                if !top.in_else && top.else_mask != 0 {
                    top.in_else = true;
                    warp.active = top.else_mask;
                    warp.pc = top.else_pc;
                } else {
                    warp.active = top.saved_mask;
                    warp.pc = top.end_pc;
                    warp.simt.pop();
                }
            }
            Instr::Vote { op, rd, rs1 } => {
                let mut ballot = 0u64;
                let mut count = 0u32;
                let mut active = 0u32;
                for l in lanes_of(warp.active) {
                    active += 1;
                    if warp.read(l, rs1) != 0 {
                        ballot |= 1 << l;
                        count += 1;
                    }
                }
                let v = match op {
                    VoteOp::All => (count == active) as u64,
                    VoteOp::Any => (count > 0) as u64,
                    VoteOp::Ballot => ballot,
                };
                for l in 0..lanes {
                    warp.write(l, rd, v);
                }
                warp.set_pending(rd, cycle + self.alu_latency, PendKind::Exec);
            }
            Instr::Tmc { rs1 } => {
                let m = warp.read_uniform(rs1) & full_mask(lanes);
                if m == 0 {
                    return Err(SimError::Fault {
                        kernel: program.name().to_string(),
                        what: format!("tmc at pc {} would deactivate every lane", warp.pc - 1),
                    });
                }
                warp.active = m;
            }
            Instr::WeaverReg { vid, loc, deg } => {
                let mask = warp.active;
                match self.weaver_mode {
                    WeaverMode::Weaver => {
                        let records: Vec<(usize, u32, u32, u32)> = lanes_of(mask)
                            .map(|l| {
                                (
                                    l,
                                    self.warps[w].read(l, vid) as u32,
                                    self.warps[w].read(l, loc) as u32,
                                    self.warps[w].read(l, deg) as u32,
                                )
                            })
                            .collect();
                        self.weaver
                            .reg(w, &records, cycle)
                            .map_err(|e| SimError::Fault {
                                kernel: program.name().to_string(),
                                what: e.to_string(),
                            })?;
                    }
                    WeaverMode::Eghw => {
                        let records: Vec<(usize, u32)> = lanes_of(mask)
                            .map(|l| (l, self.warps[w].read(l, vid) as u32))
                            .collect();
                        self.eghw.reg(w, &records, cycle);
                    }
                }
            }
            Instr::WeaverDecId { rd } => match self.weaver_mode {
                WeaverMode::Weaver => {
                    let resp = self.weaver.dec_id(w, cycle);
                    if let Some(p) = &self.profiler {
                        p.weaver_dec(core_id, w, cycle, resp.ready_at);
                    }
                    let warp = &mut self.warps[w];
                    for l in 0..lanes {
                        warp.write(l, rd, resp.batch.vids[l] as u64);
                    }
                    warp.set_pending(rd, resp.ready_at, PendKind::Weaver);
                    if self.auto_mask && !resp.batch.exhausted {
                        warp.active = resp.batch.mask() & full_mask(lanes);
                    }
                }
                WeaverMode::Eghw => {
                    let batch = self.eghw.dec(cycle, |a, wd, _unit_now| {
                        // The unit has its own memory port (SCU/GraphPEG
                        // style): full lookup latency, no GPU port queue.
                        let lat = hier.access_unqueued(core_id, a, false).latency;
                        // The unit's port cannot raise a bus error; an
                        // out-of-bounds lookup reads as zero.
                        (mem.try_read(a, wd).unwrap_or(0), lat)
                    });
                    let staging = eghw_staging_base(self.shared.len(), self.warps.len(), lanes);
                    for l in 0..lanes {
                        let slot = staging + ((w * lanes + l) as u64) * 8;
                        // Staged through the fallible path: a scratchpad
                        // too small for the staging area is a typed fault
                        // naming the kernel, not a process abort.
                        self.shared
                            .try_write(slot, batch.others[l].max(0) as u64, 4)
                            .map_err(|e| mem_fault(program, &e))?;
                        self.shared
                            .try_write(slot + 4, batch.weights[l].max(0) as u64, 4)
                            .map_err(|e| mem_fault(program, &e))?;
                    }
                    self.eghw_dt[w].copy_from_slice(&batch.eids);
                    if let Some(p) = &self.profiler {
                        p.weaver_dec(core_id, w, cycle, batch.ready_at);
                    }
                    let warp = &mut self.warps[w];
                    for l in 0..lanes {
                        warp.write(l, rd, batch.vids[l] as u64);
                    }
                    warp.set_pending(rd, batch.ready_at, PendKind::Weaver);
                    if self.auto_mask && !batch.exhausted {
                        let mut m = 0u64;
                        for (l, &v) in batch.vids.iter().enumerate() {
                            if v != EMPTY_WORK_ID {
                                m |= 1 << l;
                            }
                        }
                        warp.active = m & full_mask(lanes);
                    }
                }
            },
            Instr::WeaverDecLoc { rd } => match self.weaver_mode {
                WeaverMode::Weaver => {
                    let (eids, ready) = self.weaver.dec_loc(w, cycle);
                    let warp = &mut self.warps[w];
                    for (l, &eid) in eids.iter().enumerate().take(lanes) {
                        warp.write(l, rd, eid as u64);
                    }
                    warp.set_pending(rd, ready, PendKind::Weaver);
                }
                WeaverMode::Eghw => {
                    let eids = self.eghw_dt[w].clone();
                    let warp = &mut self.warps[w];
                    for (l, &eid) in eids.iter().enumerate().take(lanes) {
                        warp.write(l, rd, eid as u64);
                    }
                    warp.set_pending(rd, cycle + self.shared_latency + 1, PendKind::Shared);
                }
            },
            Instr::WeaverSkip { vid } => {
                if self.weaver_mode == WeaverMode::Weaver {
                    let vids: Vec<u32> = lanes_of(self.warps[w].active)
                        .map(|l| self.warps[w].read(l, vid) as u32)
                        .collect();
                    self.weaver.skip(&vids, cycle);
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_load(
        &mut self,
        w: usize,
        rd: sparseweaver_isa::Reg,
        addr: sparseweaver_isa::Reg,
        offset: i32,
        width: Width,
        space: Space,
        cycle: u64,
        hier: &mut Hierarchy,
        mem: &mut MainMemory,
        program: &Program,
    ) -> Result<(), SimError> {
        let mask = self.warps[w].active;
        match space {
            Space::Shared => {
                for l in lanes_of(mask) {
                    let a = self.warps[w]
                        .read(l, addr)
                        .wrapping_add(offset as i64 as u64);
                    let v = self
                        .shared
                        .try_read(a, width.bytes())
                        .map_err(|e| mem_fault(program, &e))?;
                    self.warps[w].write(l, rd, v);
                }
                self.warps[w].set_pending(rd, cycle + self.shared_latency, PendKind::Shared);
            }
            Space::Global => {
                // Coalesce into unique lines (in address order for
                // determinism), one hierarchy access each. A warp has at
                // most 64 lanes, so the line set fits on the stack.
                let mut lines = [0u64; 64];
                let mut n = 0usize;
                for l in lanes_of(mask) {
                    lines[n] = sparseweaver_mem::line_of(
                        self.warps[w]
                            .read(l, addr)
                            .wrapping_add(offset as i64 as u64),
                    );
                    n += 1;
                }
                let lines = &mut lines[..n];
                lines.sort_unstable();
                let mut max_lat = 0u64;
                let mut prev = None;
                for &line in lines.iter() {
                    if prev == Some(line) {
                        continue;
                    }
                    prev = Some(line);
                    let r = hier.access(self.id, line, false, cycle);
                    max_lat = max_lat.max(r.latency);
                    self.stats.stalls.l1_queue += r.queue_delay;
                }
                for l in lanes_of(mask) {
                    let a = self.warps[w]
                        .read(l, addr)
                        .wrapping_add(offset as i64 as u64);
                    let v = mem
                        .try_read(a, width.bytes())
                        .map_err(|e| mem_fault(program, &e))?;
                    self.warps[w].write(l, rd, v);
                }
                self.warps[w].set_pending(rd, cycle + max_lat, PendKind::Memory);
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_store(
        &mut self,
        w: usize,
        src: sparseweaver_isa::Reg,
        addr: sparseweaver_isa::Reg,
        offset: i32,
        width: Width,
        space: Space,
        cycle: u64,
        hier: &mut Hierarchy,
        mem: &mut MainMemory,
        program: &Program,
    ) -> Result<(), SimError> {
        let mask = self.warps[w].active;
        match space {
            Space::Shared => {
                for l in lanes_of(mask) {
                    let a = self.warps[w]
                        .read(l, addr)
                        .wrapping_add(offset as i64 as u64);
                    let v = self.warps[w].read(l, src);
                    self.shared
                        .try_write(a, v, width.bytes())
                        .map_err(|e| mem_fault(program, &e))?;
                }
            }
            Space::Global => {
                let mut lines = [0u64; 64];
                let mut n = 0usize;
                for l in lanes_of(mask) {
                    lines[n] = sparseweaver_mem::line_of(
                        self.warps[w]
                            .read(l, addr)
                            .wrapping_add(offset as i64 as u64),
                    );
                    n += 1;
                }
                let lines = &mut lines[..n];
                lines.sort_unstable();
                let mut prev = None;
                for &line in lines.iter() {
                    if prev == Some(line) {
                        continue;
                    }
                    prev = Some(line);
                    let r = hier.access(self.id, line, true, cycle);
                    self.stats.stalls.l1_queue += r.queue_delay;
                }
                for l in lanes_of(mask) {
                    let a = self.warps[w]
                        .read(l, addr)
                        .wrapping_add(offset as i64 as u64);
                    let v = self.warps[w].read(l, src);
                    mem.try_write(a, v, width.bytes())
                        .map_err(|e| mem_fault(program, &e))?;
                }
            }
        }
        // Stores are fire-and-forget: the warp continues immediately.
        Ok(())
    }
}

/// Maps a typed device-memory fault to a [`SimError::Fault`].
fn mem_fault(program: &Program, e: &sparseweaver_mem::MemFault) -> SimError {
    SimError::Fault {
        kernel: program.name().to_string(),
        what: e.to_string(),
    }
}

/// Where the EGHW staging buffer lives in shared memory: the top
/// `warps x lanes x 8` bytes.
pub fn eghw_staging_base(shared_bytes: usize, warps: usize, lanes: usize) -> u64 {
    (shared_bytes - warps * lanes * 8) as u64
}
