//! Structured hang diagnostics.
//!
//! When a launch deadlocks or exceeds its cycle budget, the GPU snapshots
//! the whole machine into a [`HangReport`] attached to the returned
//! [`SimError`](crate::SimError). The report replaces the old
//! `SPARSEWEAVER_DEBUG_HANG` environment variable: instead of an
//! unstructured dump to stderr, callers get per-warp scheduling state,
//! barrier arrivals, Weaver FSM state, and memory-port queue occupancy,
//! all renderable as JSON (`swsim --hang-report <path>`).

use std::fmt::Write as _;

use sparseweaver_mem::PortOccupancy;

/// One warp's scheduling state at the moment of the hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpHang {
    /// Warp index within its core.
    pub warp: usize,
    /// Program counter (instruction index).
    pub pc: u32,
    /// Scheduling state: `running`, `at_barrier`, or `halted`.
    pub state: String,
    /// Active thread mask.
    pub active_mask: u64,
    /// IPDOM divergence-stack depth.
    pub stack_depth: usize,
    /// What the warp's soonest-ready pending register waits on
    /// (`memory`, `shared`, `weaver`, `exec`, or `none`).
    pub waiting_on: String,
    /// Cycle at which that register becomes ready (`u64::MAX` = never,
    /// e.g. a dropped Weaver response).
    pub next_ready: u64,
}

/// One core's state at the moment of the hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreHang {
    /// Core index.
    pub core: usize,
    /// Warps still resident (not halted).
    pub resident_warps: usize,
    /// Warps currently arrived at the core barrier.
    pub barrier_arrivals: usize,
    /// The Weaver FSM's state id (0–8, Fig. 6).
    pub weaver_fsm_state: u8,
    /// Per-warp detail.
    pub warps: Vec<WarpHang>,
}

/// A structured snapshot of the machine at a deadlock or cycle-limit
/// abort, attached to [`SimError::Deadlock`](crate::SimError::Deadlock),
/// [`SimError::CycleLimit`](crate::SimError::CycleLimit), and
/// [`SimError::WeaverTimeout`](crate::SimError::WeaverTimeout).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HangReport {
    /// The kernel that hung.
    pub kernel: String,
    /// The cycle at which progress stopped (or the limit was exceeded).
    pub cycle: u64,
    /// Per-core machine state.
    pub cores: Vec<CoreHang>,
    /// Memory-port queue occupancy (`l1:<core>`, `l2`, `dram`, `atomic`).
    pub ports: Vec<PortOccupancy>,
}

impl HangReport {
    /// Renders the report as a single JSON object (hand-rolled like the
    /// rest of the stack's exports; key order is fixed so output is
    /// byte-deterministic).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        let _ = write!(
            s,
            "{{\"schema\":\"sparseweaver-hang-report-v1\",\"kernel\":\"{}\",\"cycle\":{},\"cores\":[",
            escape(&self.kernel),
            self.cycle
        );
        for (i, c) in self.cores.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"core\":{},\"resident_warps\":{},\"barrier_arrivals\":{},\
                 \"weaver_fsm_state\":{},\"warps\":[",
                c.core, c.resident_warps, c.barrier_arrivals, c.weaver_fsm_state
            );
            for (j, w) in c.warps.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"warp\":{},\"pc\":{},\"state\":\"{}\",\"active_mask\":{},\
                     \"stack_depth\":{},\"waiting_on\":\"{}\",\"next_ready\":{}}}",
                    w.warp,
                    w.pc,
                    escape(&w.state),
                    w.active_mask,
                    w.stack_depth,
                    escape(&w.waiting_on),
                    w.next_ready
                );
            }
            s.push_str("]}");
        }
        s.push_str("],\"ports\":[");
        for (i, p) in self.ports.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"used\":{},\"per_window\":{},\"busy_until\":{}}}",
                escape(&p.name),
                p.used,
                p.per_window,
                p.busy_until
            );
        }
        s.push_str("]}");
        s
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape() {
        let r = HangReport {
            kernel: "bfs_gather".to_string(),
            cycle: 42,
            cores: vec![CoreHang {
                core: 0,
                resident_warps: 2,
                barrier_arrivals: 1,
                weaver_fsm_state: 6,
                warps: vec![WarpHang {
                    warp: 0,
                    pc: 7,
                    state: "running".to_string(),
                    active_mask: 0xf,
                    stack_depth: 1,
                    waiting_on: "weaver".to_string(),
                    next_ready: u64::MAX,
                }],
            }],
            ports: vec![PortOccupancy {
                name: "l1:0".to_string(),
                used: 1,
                per_window: 2,
                busy_until: 40,
            }],
        };
        let j = r.to_json();
        assert!(j.starts_with("{\"schema\":\"sparseweaver-hang-report-v1\""));
        assert!(j.contains("\"kernel\":\"bfs_gather\""));
        assert!(j.contains("\"weaver_fsm_state\":6"));
        assert!(j.contains("\"waiting_on\":\"weaver\""));
        assert!(j.contains(&format!("\"next_ready\":{}", u64::MAX)));
        assert!(j.contains("\"name\":\"l1:0\""));
        assert!(j.ends_with("]}"));
    }

    #[test]
    fn empty_report_serializes() {
        let j = HangReport::default().to_json();
        assert!(j.contains("\"cores\":[]"));
        assert!(j.contains("\"ports\":[]"));
    }
}
