//! A cycle-level SIMT GPU simulator in the spirit of Vortex's SimX.
//!
//! The paper models SparseWeaver on the open-source RISC-V Vortex GPU,
//! whose SimX simulator achieves cycle accuracy within 6% of the RTL. This
//! crate provides the equivalent substrate for the reproduction (see
//! `DESIGN.md`, substitution 1):
//!
//! - multi-core, multi-warp, lockstep-lane execution with an explicit
//!   IPDOM divergence stack driven by `split`/`join`;
//! - per-warp in-order issue with a register scoreboard, so load latency
//!   is hidden exactly the way real GPUs hide it — by switching warps;
//! - a round-robin warp scheduler issuing at most one instruction per core
//!   per cycle;
//! - memory accesses coalesced per warp into 64-byte lines and sent
//!   through the `sparseweaver-mem` hierarchy;
//! - core-wide barriers (the registration/distribution synchronization of
//!   Section III-C);
//! - the Weaver unit and the EGHW baseline integrated as per-core
//!   functional units behind the four `WEAVER_*` instructions;
//! - stall attribution matching the Nsight categories of Fig. 4 (memory /
//!   shared / execution dependency / L1 queue / barrier / Weaver) and
//!   phase attribution for the breakdowns of Figs. 17–18.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod core;
pub mod gpu;
pub mod hang;
pub mod stats;
pub mod warp;

pub use config::{GpuConfig, WeaverMode};
pub use core::{CoreState, TraceRecord};
pub use gpu::{Gpu, GpuState, Occupancy};
pub use hang::{CoreHang, HangReport, WarpHang};
pub use stats::{KernelStats, Phase, StallBreakdown};
pub use warp::WarpSnapshot;

/// Simulation errors: kernel bugs surfaced by the machine model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A uniform branch saw lanes disagree (divergence must use
    /// `split`/`join`).
    DivergentBranch {
        /// Kernel name.
        kernel: String,
        /// Program counter of the branch.
        pc: u32,
    },
    /// All cores are blocked and nothing will ever become ready.
    Deadlock {
        /// Kernel name.
        kernel: String,
        /// Cycle at which progress stopped.
        cycle: u64,
        /// Machine snapshot at the moment of the hang.
        hang: Box<HangReport>,
    },
    /// A `join` executed with an empty divergence stack.
    UnbalancedJoin {
        /// Kernel name.
        kernel: String,
        /// Program counter of the join.
        pc: u32,
    },
    /// The kernel exceeded the configured cycle budget.
    CycleLimit {
        /// Kernel name.
        kernel: String,
        /// The exceeded limit.
        limit: u64,
        /// Machine snapshot at the moment the limit tripped.
        hang: Box<HangReport>,
    },
    /// Every core is waiting on a Weaver response that will never arrive
    /// (the unit dropped it, per the injected Table-II protocol fault).
    /// Distinguished from [`SimError::Deadlock`] so the runtime can retry
    /// and, on exhaustion, fall back to the software `S_wm` schedule.
    WeaverTimeout {
        /// Kernel name.
        kernel: String,
        /// Cycle at which progress stopped.
        cycle: u64,
        /// Machine snapshot at the moment of the hang.
        hang: Box<HangReport>,
    },
    /// An instruction word failed to decode (corrupted fetch).
    IllegalInstruction {
        /// Kernel name.
        kernel: String,
        /// Program counter of the corrupt word.
        pc: u32,
        /// The 32-bit instruction word that failed to decode.
        word: u32,
    },
    /// A detected machine fault: out-of-bounds memory access, a `tmc`
    /// that would deactivate every lane, an ST-capacity violation, …
    Fault {
        /// Kernel name.
        kernel: String,
        /// What faulted.
        what: String,
    },
    /// The kernel touches more registers than one warp's register-file
    /// allotment; not even a single warp can hold its context.
    RegisterPressure {
        /// Kernel name.
        kernel: String,
        /// Registers the kernel touches ([`sparseweaver_isa::Program::register_high_water`]).
        high_water: usize,
        /// Per-warp limit ([`GpuConfig::regfile_regs_per_warp`]).
        limit: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::DivergentBranch { kernel, pc } => {
                write!(f, "divergent uniform branch in `{kernel}` at pc {pc}")
            }
            SimError::Deadlock { kernel, cycle, .. } => {
                write!(f, "deadlock in `{kernel}` at cycle {cycle}")
            }
            SimError::UnbalancedJoin { kernel, pc } => {
                write!(f, "unbalanced join in `{kernel}` at pc {pc}")
            }
            SimError::CycleLimit { kernel, limit, .. } => {
                write!(f, "`{kernel}` exceeded the cycle limit of {limit}")
            }
            SimError::WeaverTimeout { kernel, cycle, .. } => {
                write!(
                    f,
                    "weaver response timed out in `{kernel}` at cycle {cycle}"
                )
            }
            SimError::IllegalInstruction { kernel, pc, word } => {
                write!(
                    f,
                    "illegal instruction in `{kernel}` at pc {pc} (word {word:#010x})"
                )
            }
            SimError::Fault { kernel, what } => {
                write!(f, "machine fault in `{kernel}`: {what}")
            }
            SimError::RegisterPressure {
                kernel,
                high_water,
                limit,
            } => {
                write!(
                    f,
                    "`{kernel}` touches {high_water} registers but the register \
                     file allots {limit} per warp"
                )
            }
        }
    }
}

impl SimError {
    /// The attached machine snapshot, when this error is a hang
    /// (deadlock, cycle limit, or Weaver timeout).
    pub fn hang_report(&self) -> Option<&HangReport> {
        match self {
            SimError::Deadlock { hang, .. }
            | SimError::CycleLimit { hang, .. }
            | SimError::WeaverTimeout { hang, .. } => Some(hang),
            _ => None,
        }
    }
}

impl std::error::Error for SimError {}
