//! Per-warp state: registers, scoreboard, IPDOM divergence stack.

use sparseweaver_isa::{Reg, NUM_REGS};

use crate::stats::{PendKind, Phase};

/// One IPDOM (immediate post-dominator) stack entry pushed by `split`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimtEntry {
    /// Mask to restore at reconvergence.
    pub saved_mask: u64,
    /// Lanes that take the else side.
    pub else_mask: u64,
    /// Program counter of the else side.
    pub else_pc: u32,
    /// Program counter just past the region's final `join`.
    pub end_pc: u32,
    /// Whether the else side is currently executing.
    pub in_else: bool,
}

/// Warp scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpState {
    /// Eligible for issue.
    Running,
    /// Parked at a core barrier.
    AtBarrier,
    /// Kernel finished.
    Halted,
}

impl WarpState {
    /// A stable index for checkpoint encoding.
    pub fn state_id(self) -> u8 {
        match self {
            WarpState::Running => 0,
            WarpState::AtBarrier => 1,
            WarpState::Halted => 2,
        }
    }

    /// The inverse of [`WarpState::state_id`]; `None` for unknown ids
    /// (a corrupt checkpoint).
    pub fn from_id(id: u8) -> Option<Self> {
        Some(match id {
            0 => WarpState::Running,
            1 => WarpState::AtBarrier,
            2 => WarpState::Halted,
            _ => return None,
        })
    }
}

/// A complete snapshot of one warp's mutable state: PC, mask, divergence
/// stack, register file and scoreboard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpSnapshot {
    /// Program counter.
    pub pc: u32,
    /// Active lane mask.
    pub active: u64,
    /// Scheduling state as its stable index.
    pub state_id: u8,
    /// Divergence stack, bottom first.
    pub simt: Vec<SimtEntry>,
    /// Current phase as its breakdown index.
    pub phase_id: u8,
    /// Lane-major register file (`lanes * NUM_REGS` words).
    pub regs: Vec<u64>,
    /// Scoreboard ready cycles (`NUM_REGS` entries).
    pub ready: Vec<u64>,
    /// Scoreboard producer kinds (`NUM_REGS` stable indices).
    pub pend: Vec<u8>,
}

/// One warp: lockstep lanes with private registers and a shared program
/// counter, scoreboard and divergence stack.
#[derive(Debug, Clone)]
pub struct Warp {
    /// Program counter (instruction index).
    pub pc: u32,
    /// Active lane mask.
    pub active: u64,
    /// Scheduling state.
    pub state: WarpState,
    /// Divergence stack.
    pub simt: Vec<SimtEntry>,
    /// Current phase for cycle attribution.
    pub phase: Phase,
    /// Lane-major register file: `regs[lane * NUM_REGS + reg]`.
    regs: Vec<u64>,
    /// Cycle at which each register's pending write completes.
    ready: [u64; NUM_REGS],
    /// What kind of producer each pending register waits on.
    pend: [PendKind; NUM_REGS],
    lanes: usize,
}

impl Warp {
    /// Creates a warp with `lanes` lanes, all active, at pc 0.
    pub fn new(lanes: usize) -> Self {
        Warp {
            pc: 0,
            active: full_mask(lanes),
            state: WarpState::Running,
            simt: Vec::new(),
            phase: Phase::Init,
            regs: vec![0; lanes * NUM_REGS],
            ready: [0; NUM_REGS],
            pend: [PendKind::None; NUM_REGS],
            lanes,
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Resets for a new kernel launch.
    pub fn reset(&mut self) {
        self.pc = 0;
        self.active = full_mask(self.lanes);
        self.state = WarpState::Running;
        self.simt.clear();
        self.phase = Phase::Init;
        self.regs.iter_mut().for_each(|r| *r = 0);
        self.ready = [0; NUM_REGS];
        self.pend = [PendKind::None; NUM_REGS];
    }

    /// Reads `reg` in `lane` (x0 is always zero).
    pub fn read(&self, lane: usize, reg: Reg) -> u64 {
        if reg.0 == 0 {
            0
        } else {
            self.regs[lane * NUM_REGS + reg.0 as usize]
        }
    }

    /// Writes `reg` in `lane` (writes to x0 are ignored).
    pub fn write(&mut self, lane: usize, reg: Reg, value: u64) {
        if reg.0 != 0 {
            self.regs[lane * NUM_REGS + reg.0 as usize] = value;
        }
    }

    /// Marks `reg` as pending until `ready_at` with producer `kind`.
    pub fn set_pending(&mut self, reg: Reg, ready_at: u64, kind: PendKind) {
        if reg.0 != 0 {
            self.ready[reg.0 as usize] = ready_at;
            self.pend[reg.0 as usize] = kind;
        }
    }

    /// Whether `reg` is available at `cycle`.
    pub fn reg_ready(&self, reg: Reg, cycle: u64) -> bool {
        self.ready[reg.0 as usize] <= cycle
    }

    /// When `reg` becomes available, and on what.
    pub fn reg_pending(&self, reg: Reg) -> (u64, PendKind) {
        (self.ready[reg.0 as usize], self.pend[reg.0 as usize])
    }

    /// The soonest-ready register still pending at `cycle`, as
    /// `(ready_at, producer)` — hang-diagnostics helper.
    pub fn soonest_pending(&self, cycle: u64) -> Option<(u64, PendKind)> {
        let mut best: Option<(u64, PendKind)> = None;
        for r in 1..NUM_REGS {
            if self.ready[r] > cycle && best.is_none_or(|(t, _)| self.ready[r] < t) {
                best = Some((self.ready[r], self.pend[r]));
            }
        }
        best
    }

    /// Flips one bit of `reg` in `lane` (fault injection). Flips into x0
    /// or out-of-range coordinates are ignored.
    pub fn flip_bit(&mut self, lane: usize, reg: usize, bit: u32) {
        if reg != 0 && reg < NUM_REGS && lane < self.lanes {
            self.regs[lane * NUM_REGS + reg] ^= 1u64 << (bit & 63);
        }
    }

    /// Captures the complete mutable state for checkpointing.
    pub fn save_state(&self) -> WarpSnapshot {
        WarpSnapshot {
            pc: self.pc,
            active: self.active,
            state_id: self.state.state_id(),
            simt: self.simt.clone(),
            phase_id: Phase::ALL
                .iter()
                .position(|&p| p == self.phase)
                .expect("phase in ALL") as u8,
            regs: self.regs.clone(),
            ready: self.ready.to_vec(),
            pend: self.pend.iter().map(|k| k.kind_id()).collect(),
        }
    }

    /// Restores state captured with [`Warp::save_state`] into a warp with
    /// the same lane count.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem on shape mismatch or an
    /// invalid state/phase/producer index.
    pub fn restore_state(&mut self, snap: &WarpSnapshot) -> Result<(), String> {
        if snap.regs.len() != self.regs.len() {
            return Err(format!(
                "warp snapshot has {} register words, {} lanes need {}",
                snap.regs.len(),
                self.lanes,
                self.regs.len()
            ));
        }
        if snap.ready.len() != NUM_REGS || snap.pend.len() != NUM_REGS {
            return Err(format!(
                "warp snapshot scoreboard has {}/{} entries, need {NUM_REGS}",
                snap.ready.len(),
                snap.pend.len()
            ));
        }
        let state = WarpState::from_id(snap.state_id)
            .ok_or_else(|| format!("invalid warp state id {}", snap.state_id))?;
        let phase = Phase::ALL
            .get(snap.phase_id as usize)
            .copied()
            .ok_or_else(|| format!("invalid phase id {}", snap.phase_id))?;
        let mut pend = [PendKind::None; NUM_REGS];
        for (slot, &id) in pend.iter_mut().zip(&snap.pend) {
            *slot =
                PendKind::from_id(id).ok_or_else(|| format!("invalid producer kind id {id}"))?;
        }
        self.pc = snap.pc;
        self.active = snap.active;
        self.state = state;
        self.simt = snap.simt.clone();
        self.phase = phase;
        self.regs.copy_from_slice(&snap.regs);
        self.ready.copy_from_slice(&snap.ready);
        self.pend = pend;
        Ok(())
    }

    /// Lanes currently active, as indices.
    pub fn active_lanes(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.lanes).filter(move |&l| self.active >> l & 1 == 1)
    }

    /// Value of `reg` in the lowest active lane (uniform reads).
    pub fn read_uniform(&self, reg: Reg) -> u64 {
        let lane = self.active.trailing_zeros() as usize;
        self.read(lane.min(self.lanes - 1), reg)
    }

    /// Number of active lanes.
    pub fn active_count(&self) -> u32 {
        self.active.count_ones()
    }
}

/// A mask with the low `lanes` bits set.
pub fn full_mask(lanes: usize) -> u64 {
    if lanes >= 64 {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// The set lanes of `mask`, ascending — like [`Warp::active_lanes`] but
/// free of the `&self` borrow, so the execution loops can walk a saved
/// mask while mutating the warp without collecting into a `Vec` first.
pub fn lanes_of(mut mask: u64) -> impl Iterator<Item = usize> {
    std::iter::from_fn(move || {
        if mask == 0 {
            None
        } else {
            let l = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            Some(l)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x0_reads_zero_and_ignores_writes() {
        let mut w = Warp::new(4);
        w.write(2, Reg(0), 99);
        assert_eq!(w.read(2, Reg(0)), 0);
    }

    #[test]
    fn registers_are_per_lane() {
        let mut w = Warp::new(4);
        w.write(0, Reg(5), 10);
        w.write(1, Reg(5), 20);
        assert_eq!(w.read(0, Reg(5)), 10);
        assert_eq!(w.read(1, Reg(5)), 20);
    }

    #[test]
    fn scoreboard_tracks_readiness() {
        let mut w = Warp::new(4);
        assert!(w.reg_ready(Reg(3), 0));
        w.set_pending(Reg(3), 100, PendKind::Memory);
        assert!(!w.reg_ready(Reg(3), 99));
        assert!(w.reg_ready(Reg(3), 100));
        assert_eq!(w.reg_pending(Reg(3)), (100, PendKind::Memory));
    }

    #[test]
    fn x0_never_pends() {
        let mut w = Warp::new(4);
        w.set_pending(Reg(0), 100, PendKind::Memory);
        assert!(w.reg_ready(Reg(0), 0));
    }

    #[test]
    fn active_lanes_iteration() {
        let mut w = Warp::new(4);
        w.active = 0b1010;
        let lanes: Vec<_> = w.active_lanes().collect();
        assert_eq!(lanes, vec![1, 3]);
        assert_eq!(w.active_count(), 2);
    }

    #[test]
    fn lanes_of_matches_active_lanes() {
        for mask in [0u64, 0b1, 0b1010, 0b1111, u64::MAX >> 32] {
            let mut w = Warp::new(32);
            w.active = mask & full_mask(32);
            let via_warp: Vec<_> = w.active_lanes().collect();
            let via_mask: Vec<_> = lanes_of(w.active).collect();
            assert_eq!(via_mask, via_warp, "mask {mask:b}");
        }
        assert_eq!(lanes_of(1u64 << 63).collect::<Vec<_>>(), vec![63]);
    }

    #[test]
    fn uniform_read_uses_lowest_active_lane() {
        let mut w = Warp::new(4);
        w.write(1, Reg(7), 42);
        w.active = 0b1110;
        assert_eq!(w.read_uniform(Reg(7)), 42);
    }

    #[test]
    fn full_mask_widths() {
        assert_eq!(full_mask(4), 0b1111);
        assert_eq!(full_mask(64), u64::MAX);
    }

    #[test]
    fn reset_restores_everything() {
        let mut w = Warp::new(4);
        w.pc = 10;
        w.active = 1;
        w.state = WarpState::Halted;
        w.write(0, Reg(1), 5);
        w.set_pending(Reg(1), 50, PendKind::Exec);
        w.reset();
        assert_eq!(w.pc, 0);
        assert_eq!(w.active, 0b1111);
        assert_eq!(w.state, WarpState::Running);
        assert_eq!(w.read(0, Reg(1)), 0);
        assert!(w.reg_ready(Reg(1), 0));
    }
}
