//! A tiny JSON writer/parser — enough to emit the exporters' output and
//! to validate it in tests without an external dependency.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` into a JSON string literal body (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value (object keys keep insertion-independent order via
/// a sorted map; duplicates keep the last value).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset on malformed input.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a value"),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(&format!("expected `{word}`"))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid utf-8 at byte {}", self.pos))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_basics() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":"x\"y","c":true,"d":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_num(), Some(2.5));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("d"), Some(&Value::Null));
    }

    #[test]
    fn escape_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        // What escape produces, parse accepts.
        let s = "odd \"chars\"\n\t\u{3}";
        let doc = format!("\"{}\"", escape(s));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(s));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn nested_structures() {
        let v = parse(r#"[{"x":{"y":[[]]}}]"#).unwrap();
        let inner = v.as_arr().unwrap()[0].get("x").unwrap().get("y").unwrap();
        assert_eq!(inner.as_arr().unwrap()[0].as_arr().unwrap().len(), 0);
    }
}
