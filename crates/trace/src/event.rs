//! The typed event taxonomy the simulator emits.

use crate::tracer::Category;

/// The execution phases of the gather process, used for the breakdowns of
/// Figs. 17 and 18. Kernels mark phase boundaries with the zero-cost
/// `Phase` pseudo-instruction.
///
/// This lives in the trace crate so that both the simulator's statistics
/// and the trace events share one definition; `sparseweaver-sim`
/// re-exports it as `sparseweaver_sim::stats::Phase`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
#[repr(u8)]
pub enum Phase {
    /// Kernel prologue and property initialization.
    Init = 0,
    /// Registration stage (topology investigation + `WEAVER_REG`).
    Registration = 1,
    /// Work-ID calculation (edge scheduling / decode).
    EdgeSchedule = 2,
    /// Edge information access (`getEdge` loads).
    EdgeInfoAccess = 3,
    /// Gather & sum computation.
    GatherSum = 4,
    /// Apply kernels and anything else.
    Other = 5,
}

impl Phase {
    /// Number of phase slots.
    pub const COUNT: usize = 6;

    /// All phases in breakdown order.
    pub const ALL: [Phase; 6] = [
        Phase::Init,
        Phase::Registration,
        Phase::EdgeSchedule,
        Phase::EdgeInfoAccess,
        Phase::GatherSum,
        Phase::Other,
    ];

    /// Display label matching the paper's Fig. 17 legend.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Init => "Init",
            Phase::Registration => "Registration",
            Phase::EdgeSchedule => "Work ID calc",
            Phase::EdgeInfoAccess => "Edge info access",
            Phase::GatherSum => "Gather & Sum",
            Phase::Other => "Other",
        }
    }
}

/// Where in the hierarchy a memory access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemLevel {
    /// Per-core L1.
    L1,
    /// Shared L2.
    L2,
    /// Optional L3.
    L3,
    /// Main memory.
    Dram,
}

impl MemLevel {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            MemLevel::L1 => "L1",
            MemLevel::L2 => "L2",
            MemLevel::L3 => "L3",
            MemLevel::Dram => "DRAM",
        }
    }

    /// A stable index for checkpoint encoding.
    pub fn level_id(self) -> u8 {
        match self {
            MemLevel::L1 => 0,
            MemLevel::L2 => 1,
            MemLevel::L3 => 2,
            MemLevel::Dram => 3,
        }
    }

    /// The inverse of [`MemLevel::level_id`]; `None` for unknown ids.
    pub fn from_id(id: u8) -> Option<Self> {
        Some(match id {
            0 => MemLevel::L1,
            1 => MemLevel::L2,
            2 => MemLevel::L3,
            3 => MemLevel::Dram,
            _ => return None,
        })
    }
}

/// Why a core could not issue (mirrors the simulator's stall breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// Waiting on a global-memory load result.
    Memory,
    /// Waiting on a shared-memory result.
    Shared,
    /// Waiting on an ALU/FPU result.
    ExecDep,
    /// Waiting on a Weaver/EGHW unit response.
    Weaver,
    /// Every resident warp is parked at a barrier.
    Barrier,
}

impl StallCause {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            StallCause::Memory => "memory",
            StallCause::Shared => "shared",
            StallCause::ExecDep => "exec_dep",
            StallCause::Weaver => "weaver",
            StallCause::Barrier => "barrier",
        }
    }

    /// A stable index for checkpoint encoding.
    pub fn cause_id(self) -> u8 {
        match self {
            StallCause::Memory => 0,
            StallCause::Shared => 1,
            StallCause::ExecDep => 2,
            StallCause::Weaver => 3,
            StallCause::Barrier => 4,
        }
    }

    /// The inverse of [`StallCause::cause_id`]; `None` for unknown ids.
    pub fn from_id(id: u8) -> Option<Self> {
        Some(match id {
            0 => StallCause::Memory,
            1 => StallCause::Shared,
            2 => StallCause::ExecDep,
            3 => StallCause::Weaver,
            4 => StallCause::Barrier,
            _ => return None,
        })
    }
}

/// The Weaver FSM states of Fig. 6 (S0–S8), decoupled from the weaver
/// crate's internal state machine so the event stream is self-describing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WeaverState {
    /// S0: initialized, no entry loaded yet.
    S0Init = 0,
    /// S1: first ST entry loaded into CED.
    S1LoadCed = 1,
    /// S2: decoding CED into OD entries.
    S2Decode = 2,
    /// S3: fetching the next ST entry.
    S3FetchSt = 3,
    /// S4: CED updated with the fetched entry.
    S4UpdateCed = 4,
    /// S5: OD complete, DT updated.
    S5UpdateDt = 5,
    /// S6: waiting for the next decode request.
    S6Wait = 6,
    /// S7: last entries drained.
    S7Drain = 7,
    /// S8: end — only empty work IDs remain.
    S8End = 8,
}

impl WeaverState {
    /// Maps a state index (0–8) back to the state; panics on anything else.
    pub fn from_id(id: u8) -> WeaverState {
        match id {
            0 => WeaverState::S0Init,
            1 => WeaverState::S1LoadCed,
            2 => WeaverState::S2Decode,
            3 => WeaverState::S3FetchSt,
            4 => WeaverState::S4UpdateCed,
            5 => WeaverState::S5UpdateDt,
            6 => WeaverState::S6Wait,
            7 => WeaverState::S7Drain,
            8 => WeaverState::S8End,
            other => panic!("invalid Weaver FSM state id {other}"),
        }
    }

    /// Non-panicking variant of [`WeaverState::from_id`]: `None` for ids
    /// outside 0–8 (a corrupt checkpoint).
    pub fn try_from_id(id: u8) -> Option<WeaverState> {
        (id <= 8).then(|| WeaverState::from_id(id))
    }

    /// Fig. 6 label, e.g. `"S2:decode"`.
    pub fn label(self) -> &'static str {
        match self {
            WeaverState::S0Init => "S0:init",
            WeaverState::S1LoadCed => "S1:load_ced",
            WeaverState::S2Decode => "S2:decode",
            WeaverState::S3FetchSt => "S3:fetch_st",
            WeaverState::S4UpdateCed => "S4:update_ced",
            WeaverState::S5UpdateDt => "S5:update_dt",
            WeaverState::S6Wait => "S6:wait",
            WeaverState::S7Drain => "S7:drain",
            WeaverState::S8End => "S8:end",
        }
    }
}

/// Weaver table operations (sparse table ST, dense table DT).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableOp {
    /// `WEAVER_REG` wrote ST entries.
    StWrite,
    /// The FSM fetched ST slots while filling an OD.
    StFetch,
    /// A decoded OD's edge IDs were stored to the warp's DT row.
    DtWrite,
    /// `WEAVER_DEC_LOC` read a DT row back.
    DtRead,
}

impl TableOp {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            TableOp::StWrite => "st_write",
            TableOp::StFetch => "st_fetch",
            TableOp::DtWrite => "dt_write",
            TableOp::DtRead => "dt_read",
        }
    }

    /// A stable index for checkpoint encoding.
    pub fn op_id(self) -> u8 {
        match self {
            TableOp::StWrite => 0,
            TableOp::StFetch => 1,
            TableOp::DtWrite => 2,
            TableOp::DtRead => 3,
        }
    }

    /// The inverse of [`TableOp::op_id`]; `None` for unknown ids.
    pub fn from_id(id: u8) -> Option<Self> {
        Some(match id {
            0 => TableOp::StWrite,
            1 => TableOp::StFetch,
            2 => TableOp::DtWrite,
            3 => TableOp::DtRead,
            _ => return None,
        })
    }
}

/// The payload of one trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventData {
    /// A kernel launch began.
    KernelLaunch {
        /// Kernel (program) name.
        name: String,
    },
    /// A kernel launch completed.
    KernelEnd {
        /// Kernel (program) name.
        name: String,
        /// Launch duration in cycles.
        cycles: u64,
    },
    /// A warp crossed a `Phase` pseudo-instruction boundary.
    PhaseBegin {
        /// Warp index within the core.
        warp: u32,
        /// The phase the warp entered.
        phase: Phase,
    },
    /// A warp issued one instruction.
    WarpIssue {
        /// Warp index within the core.
        warp: u32,
        /// Program counter (instruction index).
        pc: u32,
        /// Number of active lanes.
        active: u32,
    },
    /// A core spent `cycles` unable to issue.
    WarpStall {
        /// Dominant cause (the reason of the earliest-ready warp).
        cause: StallCause,
        /// Phase the stalled warp was in.
        phase: Phase,
        /// Stalled duration in cycles.
        cycles: u64,
    },
    /// A warp diverged at a `split`.
    Divergence {
        /// Warp index within the core.
        warp: u32,
        /// Program counter of the split.
        pc: u32,
        /// Lanes taking the if side.
        taken: u32,
        /// Lanes taking the else side.
        not_taken: u32,
    },
    /// One cache-line access through the hierarchy.
    CacheAccess {
        /// Level that satisfied the access.
        level: MemLevel,
        /// Whether the access was a write.
        write: bool,
        /// Port-contention delay paid, in cycles.
        queue_delay: u64,
    },
    /// One DRAM transaction (demand fill or writeback).
    DramTransaction {
        /// Whether the transaction was a write(back).
        write: bool,
    },
    /// The Weaver FSM took one transition.
    WeaverTransition {
        /// State before.
        from: WeaverState,
        /// State after.
        to: WeaverState,
    },
    /// A Weaver ST/DT table operation.
    WeaverTable {
        /// Which table and direction.
        op: TableOp,
        /// Number of entries/slots touched.
        count: u32,
    },
    /// The runtime relaunched a kernel after a Weaver response timeout
    /// (Table-II protocol fault): memory was restored from the pre-launch
    /// snapshot and the launch retried.
    WeaverRetry {
        /// Kernel (program) name.
        kernel: String,
        /// Retry attempt number (1 = first retry).
        attempt: u32,
    },
    /// Retries were exhausted and the runtime marked the Weaver unit
    /// faulty; subsequent work runs under the software `S_wm` schedule.
    WeaverFallback {
        /// Kernel (program) name that exhausted its retries.
        kernel: String,
        /// Schedule the session fell back to (e.g. `"S_wm"`).
        schedule: String,
    },
}

impl EventData {
    /// The category this event belongs to (drives `--trace-level`).
    pub fn category(&self) -> Category {
        match self {
            EventData::KernelLaunch { .. }
            | EventData::KernelEnd { .. }
            // Retry/fallback are launch-lifecycle decisions made by the
            // runtime, so they ride the always-on kernel category.
            | EventData::WeaverRetry { .. }
            | EventData::WeaverFallback { .. } => Category::Kernel,
            EventData::PhaseBegin { .. }
            | EventData::WarpIssue { .. }
            | EventData::WarpStall { .. }
            | EventData::Divergence { .. } => Category::Warp,
            EventData::CacheAccess { .. } | EventData::DramTransaction { .. } => Category::Mem,
            EventData::WeaverTransition { .. } | EventData::WeaverTable { .. } => Category::Weaver,
        }
    }
}

/// One timestamped event. `cycle` is on the *global* timeline: the tracer
/// adds the accumulated cycle count of all previously completed launches,
/// so a multi-kernel run produces one contiguous timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Global cycle at which the event occurred.
    pub cycle: u64,
    /// Core that produced the event (0 for GPU-wide events).
    pub core: u32,
    /// The typed payload.
    pub data: EventData,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_labels() {
        assert_eq!(Phase::EdgeSchedule.label(), "Work ID calc");
        assert_eq!(Phase::ALL.len(), Phase::COUNT);
    }

    #[test]
    fn weaver_state_round_trips_ids() {
        for id in 0..=8u8 {
            assert_eq!(WeaverState::from_id(id) as u8, id);
        }
    }

    #[test]
    #[should_panic(expected = "invalid Weaver FSM state id")]
    fn weaver_state_rejects_bad_id() {
        let _ = WeaverState::from_id(9);
    }

    #[test]
    fn categories_cover_the_taxonomy() {
        assert_eq!(
            EventData::KernelLaunch { name: "k".into() }.category(),
            Category::Kernel
        );
        assert_eq!(
            EventData::WarpIssue {
                warp: 0,
                pc: 0,
                active: 1
            }
            .category(),
            Category::Warp
        );
        assert_eq!(
            EventData::DramTransaction { write: false }.category(),
            Category::Mem
        );
        assert_eq!(
            EventData::WeaverTable {
                op: TableOp::StWrite,
                count: 1
            }
            .category(),
            Category::Weaver
        );
    }
}
