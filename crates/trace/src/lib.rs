//! Structured tracing and metrics for the SparseWeaver simulator.
//!
//! The simulator crates (`sparseweaver-sim`, `-mem`, `-weaver`) carry
//! optional [`TraceHandle`]s on their hot paths. With no handle attached
//! every hook is a single `Option` branch, so the cycle model and its
//! statistics are bit-identical to an uninstrumented build. With a handle
//! attached, instrumentation emits typed [`TraceEvent`]s into a bounded
//! [`TraceSink`] and the GPU launch loop records periodic
//! [`MetricSample`]s of the counter registry.
//!
//! The collected [`TraceReport`] exports to two formats:
//!
//! - [`export::chrome_trace_json`] — the Chrome trace-event format, which
//!   loads directly in Perfetto (<https://ui.perfetto.dev>) or
//!   `chrome://tracing`. One simulated cycle is mapped to one microsecond.
//! - [`export::metrics_json`] — a flat metrics document with the sampled
//!   counter time series (stall breakdown, phase cycles, cache hits,
//!   DRAM traffic, Weaver activity) plus per-kernel spans and totals.
//!
//! # Example
//!
//! ```
//! use sparseweaver_trace::{Category, EventData, TraceConfig, TraceHandle};
//!
//! let t = TraceHandle::new(TraceConfig::default());
//! t.kernel_begin("demo");
//! if t.enabled(Category::Warp) {
//!     t.emit(3, 0, EventData::WarpIssue { warp: 1, pc: 0, active: 4 });
//! }
//! t.kernel_end(10, &Default::default());
//! let report = t.report();
//! assert_eq!(report.kernels[0].cycles, 10);
//! assert_eq!(report.events.len(), 3); // launch, issue, end
//! ```

pub mod event;
pub mod export;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod sink;
pub mod tracer;

pub use event::{EventData, MemLevel, Phase, StallCause, TableOp, TraceEvent, WeaverState};
pub use metrics::{CounterSnapshot, KernelSpan, MetricSample};
pub use profile::{ImbalanceSummary, LatencyHistogram, ProfileHandle, ProfileReport, Profiler};
pub use sink::{FileSink, RingSink, SinkState, TraceSink};
pub use tracer::{
    Category, CategoryMask, TraceConfig, TraceHandle, TraceReport, Tracer, TracerState,
};
