//! The counter registry sampled into periodic metrics.

use crate::event::Phase;

/// A snapshot of every counter the metrics layer tracks.
///
/// The GPU launch loop builds launch-relative snapshots from its existing
/// statistics structures (core stats, cache stats, Weaver counters); the
/// tracer folds them onto the committed totals of previously completed
/// launches, so sampled values are cumulative over the whole run and
/// monotonically non-decreasing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CounterSnapshot {
    /// Warp-instructions issued.
    pub instructions: u64,
    /// Thread-instructions executed.
    pub thread_instructions: u64,
    /// Stall cycles waiting on global memory.
    pub stall_memory: u64,
    /// Stall cycles waiting on shared memory.
    pub stall_shared: u64,
    /// Stall cycles waiting on ALU/FPU results.
    pub stall_exec_dep: u64,
    /// L1 port-contention delay (per access).
    pub stall_l1_queue: u64,
    /// Warp-cycles parked at barriers.
    pub stall_barrier: u64,
    /// Stall cycles waiting on the Weaver/EGHW unit.
    pub stall_weaver: u64,
    /// Core-cycles attributed to each [`Phase`].
    pub phase_cycles: [u64; Phase::COUNT],
    /// L1 accesses / hits (summed over cores).
    pub l1_accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L3 accesses (0 when no L3 is configured).
    pub l3_accesses: u64,
    /// L3 hits.
    pub l3_hits: u64,
    /// DRAM transactions.
    pub dram_accesses: u64,
    /// Shared-memory reads (per-core scratch, summed over cores).
    pub shared_reads: u64,
    /// Shared-memory writes.
    pub shared_writes: u64,
    /// Functional device-memory reads (byte-level `MainMemory` traffic).
    pub mem_reads: u64,
    /// Functional device-memory writes.
    pub mem_writes: u64,
    /// Weaver ST slots fetched.
    pub weaver_st_fetches: u64,
    /// Weaver decode requests served.
    pub weaver_dec_requests: u64,
    /// Weaver ST registrations.
    pub weaver_registrations: u64,
    /// Faults injected by the deterministic injector (all sites).
    pub faults_injected: u64,
    /// Weaver responses dropped by the injector (Table-II protocol
    /// faults).
    pub weaver_drops: u64,
    /// Launch retries the runtime performed after a Weaver timeout.
    pub weaver_retries: u64,
    /// Falls back to the software `S_wm` schedule after retry
    /// exhaustion.
    pub weaver_fallbacks: u64,
    /// Register high-water of the currently running kernel (gauge).
    pub kernel_high_water: u64,
    /// Register-file occupancy cap for that kernel: the most warps per
    /// core the file can hold resident (gauge).
    pub occupancy_cap: u64,
    /// Warps actually resident per core this launch (gauge).
    pub warps_resident: u64,
    /// Warps per core the machine was configured with (gauge); a
    /// `warps_resident` below this means the register file is the
    /// binding occupancy limit.
    pub warps_configured: u64,
}

impl CounterSnapshot {
    /// Adds another snapshot field-wise. The occupancy fields are gauges,
    /// not counters: the most recent non-zero value wins instead of
    /// summing, so folding a launch snapshot onto committed totals keeps
    /// the running kernel's occupancy.
    pub fn add(&mut self, other: &CounterSnapshot) {
        self.instructions += other.instructions;
        self.thread_instructions += other.thread_instructions;
        self.stall_memory += other.stall_memory;
        self.stall_shared += other.stall_shared;
        self.stall_exec_dep += other.stall_exec_dep;
        self.stall_l1_queue += other.stall_l1_queue;
        self.stall_barrier += other.stall_barrier;
        self.stall_weaver += other.stall_weaver;
        for i in 0..Phase::COUNT {
            self.phase_cycles[i] += other.phase_cycles[i];
        }
        self.l1_accesses += other.l1_accesses;
        self.l1_hits += other.l1_hits;
        self.l2_accesses += other.l2_accesses;
        self.l2_hits += other.l2_hits;
        self.l3_accesses += other.l3_accesses;
        self.l3_hits += other.l3_hits;
        self.dram_accesses += other.dram_accesses;
        self.shared_reads += other.shared_reads;
        self.shared_writes += other.shared_writes;
        self.mem_reads += other.mem_reads;
        self.mem_writes += other.mem_writes;
        self.weaver_st_fetches += other.weaver_st_fetches;
        self.weaver_dec_requests += other.weaver_dec_requests;
        self.weaver_registrations += other.weaver_registrations;
        self.faults_injected += other.faults_injected;
        self.weaver_drops += other.weaver_drops;
        self.weaver_retries += other.weaver_retries;
        self.weaver_fallbacks += other.weaver_fallbacks;
        for (dst, src) in [
            (&mut self.kernel_high_water, other.kernel_high_water),
            (&mut self.occupancy_cap, other.occupancy_cap),
            (&mut self.warps_resident, other.warps_resident),
            (&mut self.warps_configured, other.warps_configured),
        ] {
            if src != 0 {
                *dst = src;
            }
        }
    }
}

/// One periodic sample: cumulative counters at a global cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSample {
    /// Global cycle of the sample.
    pub cycle: u64,
    /// Cumulative counter values at that cycle.
    pub counters: CounterSnapshot,
}

/// One kernel launch on the global timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpan {
    /// Kernel (program) name.
    pub name: String,
    /// Global cycle at which the launch started.
    pub start: u64,
    /// Launch duration in cycles.
    pub cycles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_addition_is_fieldwise() {
        let mut a = CounterSnapshot {
            instructions: 1,
            dram_accesses: 2,
            ..CounterSnapshot::default()
        };
        a.phase_cycles[Phase::GatherSum as usize] = 5;
        let mut b = CounterSnapshot {
            instructions: 10,
            l1_hits: 3,
            ..CounterSnapshot::default()
        };
        b.phase_cycles[Phase::GatherSum as usize] = 7;
        a.add(&b);
        assert_eq!(a.instructions, 11);
        assert_eq!(a.dram_accesses, 2);
        assert_eq!(a.l1_hits, 3);
        assert_eq!(a.phase_cycles[Phase::GatherSum as usize], 12);
    }

    #[test]
    fn occupancy_gauges_take_the_latest_nonzero_value() {
        let mut a = CounterSnapshot {
            occupancy_cap: 4,
            warps_resident: 4,
            warps_configured: 32,
            ..CounterSnapshot::default()
        };
        let b = CounterSnapshot {
            kernel_high_water: 12,
            occupancy_cap: 2,
            warps_resident: 2,
            ..CounterSnapshot::default()
        };
        a.add(&b);
        assert_eq!(a.kernel_high_water, 12);
        assert_eq!(a.occupancy_cap, 2, "gauge overwritten, not summed");
        assert_eq!(a.warps_resident, 2);
        assert_eq!(a.warps_configured, 32, "zero does not clear a gauge");
    }
}
