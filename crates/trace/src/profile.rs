//! Deterministic latency profiling: fixed-bucket histograms and
//! load-imbalance counters.
//!
//! The simulator crates carry an optional [`ProfileHandle`] next to the
//! existing `TraceHandle`: with no handle attached every hook is a single
//! `Option` branch, so profiling is zero-cost when off and the cycle model
//! is bit-identical either way. With a handle attached, the hooks record
//!
//! - per-level memory request latency (issue→fill, queueing included),
//! - Weaver request→response latency (`WEAVER_DEC_ID` issue to ready),
//! - per-warp gather-loop iteration cycles (the gap between successive
//!   `WEAVER_DEC_ID` issues of one warp), and
//! - per-core / per-warp issue counts, from which load-imbalance metrics
//!   derive.
//!
//! Everything is integer arithmetic over fixed power-of-two buckets: the
//! drained [`ProfileReport`] — and any JSON rendered from it — is
//! byte-deterministic for a deterministic simulation, independent of
//! wall-clock time, thread count, or fast-forward mode.

use std::cell::RefCell;
use std::rc::Rc;

use crate::event::MemLevel;

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i`
/// (1 ≤ i ≤ 32) holds values in `[2^(i-1), 2^i - 1]`; larger values clamp
/// into the last bucket.
pub const HISTOGRAM_BUCKETS: usize = 33;

/// A fixed-bucket power-of-two latency histogram.
///
/// Bucket boundaries are compile-time constants, so two histograms built
/// from the same value sequence — in any order — are identical, and
/// quantile estimates are exact functions of the bucket counts (each
/// quantile reports its bucket's inclusive upper bound).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Per-bucket value counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for `value`.
    fn index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Inclusive upper bound of bucket `i`.
    pub fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one (bucket-wise addition);
    /// equivalent to having recorded both value sequences.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Smallest recorded value, or 0 when the histogram is empty.
    pub fn min_or_zero(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// The `q`-th percentile (`q` in 1..=100) as the inclusive upper bound
    /// of the first bucket whose cumulative count reaches
    /// `ceil(q/100 * count)`. Returns 0 for an empty histogram. Being a
    /// pure function of the bucket counts, it is deterministic and
    /// merge-stable.
    pub fn percentile(&self, q: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * q).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The true maximum never exceeds `max`, so clamp the
                // bucket bound for a tighter (still deterministic) answer.
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`LatencyHistogram::percentile`]).
    pub fn p50(&self) -> u64 {
        self.percentile(50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99)
    }
}

/// Summary statistics over a set of per-entity counts (per-core active
/// cycles, per-warp issue counts): the load-imbalance view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImbalanceSummary {
    /// Number of entities observed.
    pub entities: u64,
    /// Smallest per-entity count.
    pub min: u64,
    /// Largest per-entity count.
    pub max: u64,
    /// Mean per-entity count, rounded down (integer, for determinism).
    pub mean: u64,
    /// `max * 1000 / mean` — the imbalance ratio in permille (1000 =
    /// perfectly balanced). 0 when the mean is 0.
    pub imbalance_permille: u64,
}

impl ImbalanceSummary {
    /// Summarises a slice of per-entity counts.
    pub fn from_counts(counts: &[u64]) -> Self {
        if counts.is_empty() {
            return ImbalanceSummary::default();
        }
        let min = *counts.iter().min().expect("non-empty");
        let max = *counts.iter().max().expect("non-empty");
        let sum: u64 = counts.iter().sum();
        let mean = sum / counts.len() as u64;
        ImbalanceSummary {
            entities: counts.len() as u64,
            min,
            max,
            mean,
            imbalance_permille: (max * 1000).checked_div(mean).unwrap_or(0),
        }
    }
}

/// Everything a [`Profiler`] collected, drained via
/// [`ProfileHandle::report`]. Plain data: `Clone + PartialEq + Send`, so
/// campaign workers can ship it across threads and tests can compare
/// runs structurally.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileReport {
    /// Request latency per hierarchy level, indexed by
    /// [`ProfileReport::mem_level_index`].
    pub mem: [LatencyHistogram; 4],
    /// Weaver request→response latency (`WEAVER_DEC_ID` issue to ready).
    pub weaver: LatencyHistogram,
    /// Per-warp gather-loop iteration cycles (gap between successive
    /// `WEAVER_DEC_ID` issues of one warp within a launch).
    pub gather_iteration: LatencyHistogram,
    /// Per-core issued-instruction counts. A core issues at most one
    /// instruction per cycle, so this is the core's active-cycle count.
    pub core_issues: Vec<u64>,
    /// Per-core, per-warp issued-instruction counts.
    pub warp_issues: Vec<Vec<u64>>,
}

impl ProfileReport {
    /// The `mem` index for a hierarchy level.
    pub fn mem_level_index(level: MemLevel) -> usize {
        match level {
            MemLevel::L1 => 0,
            MemLevel::L2 => 1,
            MemLevel::L3 => 2,
            MemLevel::Dram => 3,
        }
    }

    /// Display label for `mem[i]`.
    pub fn mem_level_label(i: usize) -> &'static str {
        ["l1", "l2", "l3", "dram"][i]
    }

    /// Per-core load imbalance (active cycles ≈ issued instructions).
    pub fn core_imbalance(&self) -> ImbalanceSummary {
        ImbalanceSummary::from_counts(&self.core_issues)
    }

    /// Per-warp load imbalance over every (core, warp) pair.
    pub fn warp_imbalance(&self) -> ImbalanceSummary {
        let flat: Vec<u64> = self.warp_issues.iter().flatten().copied().collect();
        ImbalanceSummary::from_counts(&flat)
    }

    /// Folds another report into this one: histograms merge bucket-wise,
    /// per-entity counts add element-wise (growing as needed). Used by
    /// `run_campaign` to aggregate per-run profiles; merging in run-index
    /// order keeps the result independent of worker scheduling.
    pub fn merge(&mut self, other: &ProfileReport) {
        for (dst, src) in self.mem.iter_mut().zip(other.mem.iter()) {
            dst.merge(src);
        }
        self.weaver.merge(&other.weaver);
        self.gather_iteration.merge(&other.gather_iteration);
        merge_counts(&mut self.core_issues, &other.core_issues);
        if self.warp_issues.len() < other.warp_issues.len() {
            self.warp_issues.resize(other.warp_issues.len(), Vec::new());
        }
        for (dst, src) in self.warp_issues.iter_mut().zip(other.warp_issues.iter()) {
            merge_counts(dst, src);
        }
    }
}

fn merge_counts(dst: &mut Vec<u64>, src: &[u64]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d += s;
    }
}

/// The profiling collector. Like [`crate::Tracer`], it is owned behind a
/// [`ProfileHandle`] and fed by hooks on the simulator's hot paths.
#[derive(Debug, Default)]
pub struct Profiler {
    report: ProfileReport,
    /// Per-core, per-warp cycle of the last `WEAVER_DEC_ID` issue, for
    /// gather-iteration gaps. Cleared at each launch boundary: iteration
    /// gaps never span launches.
    last_dec: Vec<Vec<Option<u64>>>,
}

impl Profiler {
    /// Marks a launch boundary: gather-iteration gap tracking restarts.
    pub fn launch_begin(&mut self) {
        for core in &mut self.last_dec {
            for slot in core.iter_mut() {
                *slot = None;
            }
        }
    }

    /// Records one memory request satisfied at `level` with total
    /// `latency` cycles (queueing included).
    pub fn mem_latency(&mut self, level: MemLevel, latency: u64) {
        self.report.mem[ProfileReport::mem_level_index(level)].record(latency);
    }

    /// Records a `WEAVER_DEC_ID` issued by `(core, warp)` at `cycle` whose
    /// response is ready at `ready_at`: feeds the Weaver
    /// request→response histogram and the per-warp gather-iteration
    /// histogram.
    pub fn weaver_dec(&mut self, core: usize, warp: usize, cycle: u64, ready_at: u64) {
        self.report.weaver.record(ready_at.saturating_sub(cycle));
        if self.last_dec.len() <= core {
            self.last_dec.resize(core + 1, Vec::new());
        }
        let warps = &mut self.last_dec[core];
        if warps.len() <= warp {
            warps.resize(warp + 1, None);
        }
        if let Some(prev) = warps[warp] {
            self.report
                .gather_iteration
                .record(cycle.saturating_sub(prev));
        }
        warps[warp] = Some(cycle);
    }

    /// Records one instruction issued by `(core, warp)`.
    pub fn warp_issue(&mut self, core: usize, warp: usize) {
        if self.report.core_issues.len() <= core {
            self.report.core_issues.resize(core + 1, 0);
            self.report.warp_issues.resize(core + 1, Vec::new());
        }
        self.report.core_issues[core] += 1;
        let warps = &mut self.report.warp_issues[core];
        if warps.len() <= warp {
            warps.resize(warp + 1, 0);
        }
        warps[warp] += 1;
    }

    /// Drains the collected report, leaving the profiler empty.
    pub fn take_report(&mut self) -> ProfileReport {
        self.last_dec.clear();
        std::mem::take(&mut self.report)
    }

    /// A non-draining copy of the collected report, for checkpoints
    /// taken at launch boundaries (the per-warp gap cursors reset at the
    /// next `launch_begin`, so the report is the whole resumable state).
    pub fn save_state(&self) -> ProfileReport {
        self.report.clone()
    }

    /// Restores a report captured by [`Profiler::save_state`].
    pub fn restore_state(&mut self, report: &ProfileReport) {
        self.report = report.clone();
        self.last_dec.clear();
    }
}

/// Shared handle to a [`Profiler`], cloned into every component that
/// profiles (cores, the memory hierarchy). The simulator is
/// single-threaded, so `Rc<RefCell<_>>` suffices — the same pattern as
/// `TraceHandle`.
#[derive(Clone, Default)]
pub struct ProfileHandle(Rc<RefCell<Profiler>>);

impl std::fmt::Debug for ProfileHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.borrow().fmt(f)
    }
}

impl ProfileHandle {
    /// A handle to a fresh, empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// See [`Profiler::launch_begin`].
    pub fn launch_begin(&self) {
        self.0.borrow_mut().launch_begin();
    }

    /// See [`Profiler::mem_latency`].
    pub fn mem_latency(&self, level: MemLevel, latency: u64) {
        self.0.borrow_mut().mem_latency(level, latency);
    }

    /// See [`Profiler::weaver_dec`].
    pub fn weaver_dec(&self, core: usize, warp: usize, cycle: u64, ready_at: u64) {
        self.0.borrow_mut().weaver_dec(core, warp, cycle, ready_at);
    }

    /// See [`Profiler::warp_issue`].
    pub fn warp_issue(&self, core: usize, warp: usize) {
        self.0.borrow_mut().warp_issue(core, warp);
    }

    /// Drains and returns the collected [`ProfileReport`].
    pub fn report(&self) -> ProfileReport {
        self.0.borrow_mut().take_report()
    }

    /// See [`Profiler::save_state`].
    pub fn save_state(&self) -> ProfileReport {
        self.0.borrow().save_state()
    }

    /// See [`Profiler::restore_state`].
    pub fn restore_state(&self, report: &ProfileReport) {
        self.0.borrow_mut().restore_state(report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_power_of_two() {
        assert_eq!(LatencyHistogram::index(0), 0);
        assert_eq!(LatencyHistogram::index(1), 1);
        assert_eq!(LatencyHistogram::index(2), 2);
        assert_eq!(LatencyHistogram::index(3), 2);
        assert_eq!(LatencyHistogram::index(4), 3);
        assert_eq!(LatencyHistogram::index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(LatencyHistogram::bucket_upper(2), 3);
    }

    #[test]
    fn percentiles_are_deterministic_bucket_bounds() {
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(3); // bucket 2, upper bound 3
        }
        for _ in 0..10 {
            h.record(100); // bucket 7, upper bound 127, clamped to max
        }
        assert_eq!(h.count, 100);
        assert_eq!(h.p50(), 3);
        assert_eq!(h.p90(), 3);
        assert_eq!(h.p99(), 100, "clamped to the observed max");
        assert_eq!(h.min_or_zero(), 3);
        assert_eq!(h.max, 100);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.min_or_zero(), 0);
    }

    #[test]
    fn merge_equals_recording_both_sequences() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for v in [1u64, 5, 9, 200] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 7, 1000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn imbalance_summary_uses_integer_permille() {
        let s = ImbalanceSummary::from_counts(&[10, 20, 30]);
        assert_eq!(s.entities, 3);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 30);
        assert_eq!(s.mean, 20);
        assert_eq!(s.imbalance_permille, 1500);
        assert_eq!(ImbalanceSummary::from_counts(&[]).imbalance_permille, 0);
    }

    #[test]
    fn gather_iteration_gaps_reset_at_launch_boundaries() {
        let p = ProfileHandle::new();
        p.launch_begin();
        p.weaver_dec(0, 1, 100, 104);
        p.weaver_dec(0, 1, 130, 133); // gap 30
        p.launch_begin();
        p.weaver_dec(0, 1, 500, 505); // no gap: new launch
        p.weaver_dec(0, 1, 520, 525); // gap 20
        let r = p.report();
        assert_eq!(r.weaver.count, 4);
        assert_eq!(r.weaver.min, 3);
        assert_eq!(r.weaver.max, 5);
        assert_eq!(r.gather_iteration.count, 2);
        assert_eq!(r.gather_iteration.min, 20);
        assert_eq!(r.gather_iteration.max, 30);
    }

    #[test]
    fn issue_counts_grow_per_core_and_warp() {
        let p = ProfileHandle::new();
        p.warp_issue(0, 0);
        p.warp_issue(0, 2);
        p.warp_issue(1, 0);
        p.warp_issue(1, 0);
        let r = p.report();
        assert_eq!(r.core_issues, vec![2, 2]);
        assert_eq!(r.warp_issues, vec![vec![1, 0, 1], vec![2]]);
        assert_eq!(r.core_imbalance().imbalance_permille, 1000);
        // A second report() call finds a drained profiler.
        assert_eq!(p.report(), ProfileReport::default());
    }

    #[test]
    fn report_merge_is_elementwise() {
        let a_handle = ProfileHandle::new();
        a_handle.warp_issue(0, 0);
        a_handle.mem_latency(MemLevel::L1, 4);
        let mut a = a_handle.report();
        let b_handle = ProfileHandle::new();
        b_handle.warp_issue(1, 1);
        b_handle.mem_latency(MemLevel::L1, 8);
        b_handle.mem_latency(MemLevel::Dram, 100);
        let b = b_handle.report();
        a.merge(&b);
        assert_eq!(a.core_issues, vec![1, 1]);
        assert_eq!(a.mem[0].count, 2);
        assert_eq!(a.mem[3].count, 1);
        assert_eq!(a.warp_issues[1], vec![0, 1]);
    }
}
