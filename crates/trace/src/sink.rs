//! Event sinks: where emitted events go.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

use crate::event::TraceEvent;

/// Resumable state of a [`TraceSink`], captured into checkpoints.
///
/// A ring sink carries its buffered events; a streaming file sink only
/// carries its progress counters — the events themselves already live in
/// the file, which the resuming process truncates back to `bytes` (runs
/// killed after the checkpoint may have written further).
#[derive(Debug, Clone, PartialEq)]
pub enum SinkState {
    /// In-memory ring buffer: the retained events and the eviction count.
    Ring {
        /// Buffered events in arrival order.
        events: Vec<TraceEvent>,
        /// Events evicted to make room.
        dropped: u64,
    },
    /// Streaming file sink progress.
    File {
        /// Events successfully written.
        written: u64,
        /// Bytes those events occupy on disk.
        bytes: u64,
    },
}

/// Destination for emitted [`TraceEvent`]s.
///
/// Implementations must be cheap: `record` sits behind the hot-path hooks
/// and runs once per enabled event.
pub trait TraceSink {
    /// Stores one event (possibly evicting an older one).
    fn record(&mut self, event: TraceEvent);

    /// Number of events currently held.
    fn buffered(&self) -> usize;

    /// Number of events evicted to make room (0 for unbounded sinks).
    fn dropped(&self) -> u64;

    /// Removes and returns all held events in arrival order.
    fn drain(&mut self) -> Vec<TraceEvent>;

    /// The first I/O error the sink encountered, if any. In-memory sinks
    /// never fail; streaming sinks latch write/flush errors here so the
    /// report layer can surface a truncated trace instead of silently
    /// shipping one.
    fn io_error(&self) -> Option<io::ErrorKind> {
        None
    }

    /// Captures the sink's resumable state for a checkpoint. Streaming
    /// sinks flush first so the captured byte count matches the file.
    fn save_state(&mut self) -> SinkState;

    /// Restores state captured by [`TraceSink::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a description when the state does not fit this sink
    /// (wrong kind, over capacity, or the underlying file rejects the
    /// truncation).
    fn restore_state(&mut self, state: &SinkState) -> Result<(), String>;
}

/// A bounded ring buffer keeping the most recent `capacity` events.
///
/// When full, the oldest event is evicted and counted in
/// [`RingSink::dropped`] — a long run keeps its tail (the interesting
/// part: the final iterations and the kernel end) instead of aborting or
/// growing without bound.
///
/// # Examples
///
/// ```
/// use sparseweaver_trace::{EventData, RingSink, TraceEvent, TraceSink};
///
/// let mut s = RingSink::new(2);
/// for cycle in 0..5 {
///     s.record(TraceEvent { cycle, core: 0, data: EventData::DramTransaction { write: false } });
/// }
/// assert_eq!(s.buffered(), 2);
/// assert_eq!(s.dropped(), 3);
/// assert_eq!(s.drain().first().unwrap().cycle, 3);
/// ```
#[derive(Debug)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// Default capacity used when none is configured (~1M events).
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            buf: VecDeque::with_capacity(capacity.min(Self::DEFAULT_CAPACITY)),
            capacity,
            dropped: 0,
        }
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    fn buffered(&self) -> usize {
        self.buf.len()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }

    fn save_state(&mut self) -> SinkState {
        SinkState::Ring {
            events: self.buf.iter().cloned().collect(),
            dropped: self.dropped,
        }
    }

    fn restore_state(&mut self, state: &SinkState) -> Result<(), String> {
        match state {
            SinkState::Ring { events, dropped } => {
                if events.len() > self.capacity {
                    return Err(format!(
                        "ring state holds {} events but capacity is {}",
                        events.len(),
                        self.capacity
                    ));
                }
                self.buf = events.iter().cloned().collect();
                self.dropped = *dropped;
                Ok(())
            }
            SinkState::File { .. } => Err("file-sink state cannot restore a ring sink".into()),
        }
    }
}

/// A streaming sink writing one JSON object per event to a `.jsonl` file.
///
/// Unlike [`RingSink`], nothing is buffered in memory and nothing is ever
/// evicted: every event survives, so arbitrarily long runs can be traced
/// without losing the head of the timeline. Lines are
/// [`crate::export::event_json`] objects; reassemble a Chrome/Perfetto
/// trace with `jq -s '{traceEvents: .}' out.jsonl`.
///
/// Write errors after a successful open are latched rather than panicking
/// mid-simulation; check [`FileSink::io_error`] (or [`FileSink::flush`])
/// after the run.
#[derive(Debug)]
pub struct FileSink {
    out: SinkOut,
    written: u64,
    bytes: u64,
    error: Option<io::ErrorKind>,
}

/// Where a [`FileSink`] streams: a file on disk, or the process stdout
/// (the CLI convention for a `-` path).
#[derive(Debug)]
enum SinkOut {
    File(BufWriter<File>),
    Stdout(io::Stdout),
}

impl SinkOut {
    fn writer(&mut self) -> &mut dyn Write {
        match self {
            SinkOut::File(f) => f,
            SinkOut::Stdout(s) => s,
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer().flush()
    }
}

impl FileSink {
    /// Creates (truncating) the file at `path`. A path of `-` streams to
    /// stdout instead, following the usual CLI convention.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the file cannot be created.
    pub fn create(path: &Path) -> io::Result<FileSink> {
        let out = if path.as_os_str() == "-" {
            SinkOut::Stdout(io::stdout())
        } else {
            SinkOut::File(BufWriter::new(File::create(path)?))
        };
        Ok(FileSink {
            out,
            written: 0,
            bytes: 0,
            error: None,
        })
    }

    /// Opens the existing file at `path` *without truncating it*, for a
    /// resume: the caller then restores a [`SinkState::File`] captured at
    /// checkpoint time, which trims the file back to the checkpointed
    /// byte count and continues appending. A path of `-` cannot be
    /// resumed (already-printed stdout cannot be taken back) and is
    /// rejected at restore time.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the file cannot be opened.
    pub fn reopen(path: &Path) -> io::Result<FileSink> {
        let out = if path.as_os_str() == "-" {
            SinkOut::Stdout(io::stdout())
        } else {
            SinkOut::File(BufWriter::new(
                OpenOptions::new().read(true).write(true).open(path)?,
            ))
        };
        Ok(FileSink {
            out,
            written: 0,
            bytes: 0,
            error: None,
        })
    }

    fn latch(&mut self, e: &io::Error) {
        if self.error.is_none() {
            self.error = Some(e.kind());
        }
    }

    /// Number of events written so far (including buffered ones).
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first write error encountered, if any.
    pub fn io_error(&self) -> Option<io::ErrorKind> {
        self.error
    }

    /// Flushes buffered lines to disk.
    ///
    /// # Errors
    ///
    /// Returns the flush error, or the first latched write error.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()?;
        match self.error {
            Some(kind) => Err(io::Error::from(kind)),
            None => Ok(()),
        }
    }
}

impl TraceSink for FileSink {
    fn record(&mut self, event: TraceEvent) {
        let line = crate::export::event_json(&event);
        if let Err(e) = writeln!(self.out.writer(), "{line}") {
            self.latch(&e);
            return;
        }
        self.written += 1;
        self.bytes += line.len() as u64 + 1;
    }

    fn buffered(&self) -> usize {
        0 // events stream straight to the file
    }

    fn dropped(&self) -> u64 {
        0
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        // A failed flush means the file on disk is missing events; latch
        // it so the report layer surfaces the truncation.
        if let Err(e) = self.out.flush() {
            self.latch(&e);
        }
        Vec::new()
    }

    fn io_error(&self) -> Option<io::ErrorKind> {
        self.error
    }

    fn save_state(&mut self) -> SinkState {
        // Flush so the on-disk byte count matches the captured one; a
        // failure latches and the report layer surfaces the truncation.
        if let Err(e) = self.out.flush() {
            self.latch(&e);
        }
        SinkState::File {
            written: self.written,
            bytes: self.bytes,
        }
    }

    fn restore_state(&mut self, state: &SinkState) -> Result<(), String> {
        let SinkState::File { written, bytes } = state else {
            return Err("ring-sink state cannot restore a file sink".into());
        };
        match &mut self.out {
            SinkOut::File(w) => {
                let f = w.get_mut();
                f.set_len(*bytes)
                    .and_then(|()| f.seek(SeekFrom::End(0)))
                    .map_err(|e| format!("truncating trace file to {bytes} bytes: {e}"))?;
            }
            SinkOut::Stdout(_) => {
                return Err("a trace streamed to stdout cannot be resumed".into());
            }
        }
        self.written = *written;
        self.bytes = *bytes;
        Ok(())
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        // Last chance to surface a truncated trace: by drop time no one
        // can observe the latch anymore, so a lost flush (or a still
        // latched write error) goes to stderr instead of vanishing.
        if let Err(e) = self.out.flush() {
            self.latch(&e);
        }
        if let Some(kind) = self.error {
            eprintln!("warning: trace file is incomplete ({kind}); events were lost");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventData;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            core: 0,
            data: EventData::DramTransaction { write: false },
        }
    }

    #[test]
    fn ring_wraps_keeping_the_newest_events() {
        let mut s = RingSink::new(4);
        for c in 0..10 {
            s.record(ev(c));
        }
        assert_eq!(s.buffered(), 4);
        assert_eq!(s.dropped(), 6);
        let cycles: Vec<u64> = s.drain().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
        assert_eq!(s.buffered(), 0);
    }

    #[test]
    fn under_capacity_drops_nothing() {
        let mut s = RingSink::new(8);
        for c in 0..5 {
            s.record(ev(c));
        }
        assert_eq!(s.buffered(), 5);
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut s = RingSink::new(0);
        s.record(ev(1));
        s.record(ev(2));
        assert_eq!(s.buffered(), 1);
        assert_eq!(s.drain()[0].cycle, 2);
    }

    #[test]
    fn file_sink_streams_jsonl_without_dropping() {
        let path = std::env::temp_dir().join("sw_file_sink_test.jsonl");
        {
            let mut s = FileSink::create(&path).unwrap();
            for c in 0..100 {
                s.record(ev(c));
            }
            assert_eq!(s.written(), 100);
            assert_eq!(s.dropped(), 0);
            assert_eq!(s.buffered(), 0);
            assert!(s.drain().is_empty()); // events live on disk, not in memory
            s.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 100);
        // Every line is a self-contained JSON object.
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[42].contains("\"ts\":42"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dash_path_streams_to_stdout_without_creating_a_file() {
        let mut s = FileSink::create(Path::new("-")).unwrap();
        s.record(ev(7));
        assert_eq!(s.written(), 1);
        assert!(s.flush().is_ok());
        assert!(s.io_error().is_none());
        assert!(!Path::new("-").exists(), "no file literally named `-`");
    }

    #[test]
    fn memory_sinks_never_report_io_errors() {
        let mut s = RingSink::new(4);
        s.record(ev(1));
        assert_eq!(s.io_error(), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn full_device_latches_flush_error_instead_of_discarding_it() {
        // `/dev/full` accepts the open but fails every write with ENOSPC,
        // which a BufWriter only observes at flush time — exactly the
        // path that used to be `let _ = flush()`.
        let path = Path::new("/dev/full");
        if !path.exists() {
            return; // minimal container without /dev/full
        }
        let mut s = FileSink::create(path).unwrap();
        for c in 0..4096 {
            s.record(ev(c)); // enough to overflow the BufWriter at least once
        }
        let _ = s.drain();
        assert!(
            s.io_error().is_some(),
            "flush to a full device must latch an error"
        );
        assert!(s.flush().is_err());
    }
}
