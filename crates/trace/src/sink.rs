//! Event sinks: where emitted events go.

use std::collections::VecDeque;

use crate::event::TraceEvent;

/// Destination for emitted [`TraceEvent`]s.
///
/// Implementations must be cheap: `record` sits behind the hot-path hooks
/// and runs once per enabled event.
pub trait TraceSink {
    /// Stores one event (possibly evicting an older one).
    fn record(&mut self, event: TraceEvent);

    /// Number of events currently held.
    fn buffered(&self) -> usize;

    /// Number of events evicted to make room (0 for unbounded sinks).
    fn dropped(&self) -> u64;

    /// Removes and returns all held events in arrival order.
    fn drain(&mut self) -> Vec<TraceEvent>;
}

/// A bounded ring buffer keeping the most recent `capacity` events.
///
/// When full, the oldest event is evicted and counted in
/// [`RingSink::dropped`] — a long run keeps its tail (the interesting
/// part: the final iterations and the kernel end) instead of aborting or
/// growing without bound.
///
/// # Examples
///
/// ```
/// use sparseweaver_trace::{EventData, RingSink, TraceEvent, TraceSink};
///
/// let mut s = RingSink::new(2);
/// for cycle in 0..5 {
///     s.record(TraceEvent { cycle, core: 0, data: EventData::DramTransaction { write: false } });
/// }
/// assert_eq!(s.buffered(), 2);
/// assert_eq!(s.dropped(), 3);
/// assert_eq!(s.drain().first().unwrap().cycle, 3);
/// ```
#[derive(Debug)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// Default capacity used when none is configured (~1M events).
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            buf: VecDeque::with_capacity(capacity.min(Self::DEFAULT_CAPACITY)),
            capacity,
            dropped: 0,
        }
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    fn buffered(&self) -> usize {
        self.buf.len()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventData;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            core: 0,
            data: EventData::DramTransaction { write: false },
        }
    }

    #[test]
    fn ring_wraps_keeping_the_newest_events() {
        let mut s = RingSink::new(4);
        for c in 0..10 {
            s.record(ev(c));
        }
        assert_eq!(s.buffered(), 4);
        assert_eq!(s.dropped(), 6);
        let cycles: Vec<u64> = s.drain().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
        assert_eq!(s.buffered(), 0);
    }

    #[test]
    fn under_capacity_drops_nothing() {
        let mut s = RingSink::new(8);
        for c in 0..5 {
            s.record(ev(c));
        }
        assert_eq!(s.buffered(), 5);
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut s = RingSink::new(0);
        s.record(ev(1));
        s.record(ev(2));
        assert_eq!(s.buffered(), 1);
        assert_eq!(s.drain()[0].cycle, 2);
    }
}
