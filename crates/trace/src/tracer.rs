//! The tracer: categories, configuration, the shared handle the
//! simulator crates hold, and the final report.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::event::{EventData, TraceEvent};
use crate::metrics::{CounterSnapshot, KernelSpan, MetricSample};
use crate::sink::{RingSink, SinkState, TraceSink};

/// Event categories, selectable via `swsim run --trace-level`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Category {
    /// Kernel launch/end boundaries (always useful; every level keeps it).
    Kernel = 1 << 0,
    /// Warp scheduling: issues, stalls, divergence, phase boundaries.
    Warp = 1 << 1,
    /// Memory hierarchy: cache accesses and DRAM transactions.
    Mem = 1 << 2,
    /// Weaver unit: FSM transitions and ST/DT table operations.
    Weaver = 1 << 3,
}

/// A set of [`Category`] bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CategoryMask(pub u8);

impl CategoryMask {
    /// No categories (events disabled; metrics sampling still works).
    pub const NONE: CategoryMask = CategoryMask(0);
    /// Every category.
    pub const ALL: CategoryMask = CategoryMask(0b1111);

    /// A mask of exactly one category.
    pub fn only(cat: Category) -> CategoryMask {
        CategoryMask(cat as u8)
    }

    /// Whether `cat` is in the set.
    pub fn contains(self, cat: Category) -> bool {
        self.0 & cat as u8 != 0
    }

    /// The union with `cat`.
    pub fn with(self, cat: Category) -> CategoryMask {
        CategoryMask(self.0 | cat as u8)
    }

    /// Parses a `--trace-level` value. Kernel boundaries are always
    /// included; `all` enables everything.
    pub fn parse(level: &str) -> Option<CategoryMask> {
        let base = CategoryMask::only(Category::Kernel);
        match level {
            "warp" => Some(base.with(Category::Warp)),
            "mem" => Some(base.with(Category::Mem)),
            "weaver" => Some(base.with(Category::Weaver)),
            "all" => Some(CategoryMask::ALL),
            _ => None,
        }
    }
}

/// Tracer configuration, threaded through `Session`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Which event categories to record.
    pub categories: CategoryMask,
    /// Sample the counter registry every this many cycles (0 disables
    /// periodic sampling; kernel-end samples are still taken).
    pub sample_every: u64,
    /// Ring-buffer capacity in events.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            categories: CategoryMask::ALL,
            sample_every: 0,
            ring_capacity: RingSink::DEFAULT_CAPACITY,
        }
    }
}

/// The collecting tracer. Usually accessed through a [`TraceHandle`].
pub struct Tracer {
    mask: CategoryMask,
    sink: Box<dyn TraceSink>,
    sample_every: u64,
    next_sample: u64,
    /// Global-cycle base: total cycles of completed launches so far.
    base: u64,
    /// Counter totals committed by completed launches.
    committed: CounterSnapshot,
    samples: Vec<MetricSample>,
    kernels: Vec<KernelSpan>,
    current_kernel: Option<String>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("mask", &self.mask)
            .field("sample_every", &self.sample_every)
            .field("base", &self.base)
            .field("buffered", &self.sink.buffered())
            .field("dropped", &self.sink.dropped())
            .finish()
    }
}

impl Tracer {
    /// Creates a tracer with a [`RingSink`] of the configured capacity.
    pub fn new(cfg: TraceConfig) -> Self {
        Tracer::with_sink(cfg, Box::new(RingSink::new(cfg.ring_capacity)))
    }

    /// Creates a tracer over a caller-provided sink.
    pub fn with_sink(cfg: TraceConfig, sink: Box<dyn TraceSink>) -> Self {
        Tracer {
            mask: cfg.categories,
            sink,
            sample_every: cfg.sample_every,
            next_sample: if cfg.sample_every > 0 {
                cfg.sample_every
            } else {
                u64::MAX
            },
            base: 0,
            committed: CounterSnapshot::default(),
            samples: Vec::new(),
            kernels: Vec::new(),
            current_kernel: None,
        }
    }

    /// Whether events of `cat` are being recorded.
    pub fn enabled(&self, cat: Category) -> bool {
        self.mask.contains(cat)
    }

    /// Records an event at launch-relative `cycle` (shifted onto the
    /// global timeline) if its category is enabled.
    pub fn emit(&mut self, cycle: u64, core: u32, data: EventData) {
        if self.enabled(data.category()) {
            self.sink.record(TraceEvent {
                cycle: self.base + cycle,
                core,
                data,
            });
        }
    }

    /// Whether a periodic sample is due at launch-relative `cycle`.
    pub fn sample_due(&self, cycle: u64) -> bool {
        cycle >= self.next_sample
    }

    /// Records a sample. `launch_counters` are measured since the current
    /// launch began; the tracer folds them onto committed totals.
    pub fn record_sample(&mut self, cycle: u64, launch_counters: &CounterSnapshot) {
        let mut counters = self.committed;
        counters.add(launch_counters);
        self.samples.push(MetricSample {
            cycle: self.base + cycle,
            counters,
        });
        if self.sample_every > 0 {
            while self.next_sample <= cycle {
                self.next_sample += self.sample_every;
            }
        }
    }

    /// Marks the start of a kernel launch.
    pub fn kernel_begin(&mut self, name: &str) {
        self.current_kernel = Some(name.to_string());
        self.next_sample = if self.sample_every > 0 {
            self.sample_every
        } else {
            u64::MAX
        };
        self.emit(
            0,
            0,
            EventData::KernelLaunch {
                name: name.to_string(),
            },
        );
    }

    /// Marks the end of a launch: commits its final counters, records a
    /// closing sample, and advances the global time base.
    pub fn kernel_end(&mut self, cycles: u64, final_counters: &CounterSnapshot) {
        let name = self
            .current_kernel
            .take()
            .unwrap_or_else(|| "kernel".to_string());
        self.emit(
            cycles,
            0,
            EventData::KernelEnd {
                name: name.clone(),
                cycles,
            },
        );
        self.committed.add(final_counters);
        self.samples.push(MetricSample {
            cycle: self.base + cycles,
            counters: self.committed,
        });
        self.kernels.push(KernelSpan {
            name,
            start: self.base,
            cycles,
        });
        self.base += cycles;
    }

    /// Folds `extra` directly onto the committed totals, outside any
    /// launch. The runtime uses this for counters it owns — retry and
    /// fallback decisions happen between launches, not inside one.
    pub fn add_totals(&mut self, extra: &CounterSnapshot) {
        self.committed.add(extra);
    }

    /// Captures the tracer's accumulated state for a checkpoint.
    ///
    /// Only valid between launches (no kernel in flight); the sampling
    /// cadence and category mask come from configuration and are rebuilt
    /// by the resuming session, so they are not part of the state.
    pub fn save_state(&mut self) -> TracerState {
        TracerState {
            base: self.base,
            committed: self.committed,
            samples: self.samples.clone(),
            kernels: self.kernels.clone(),
            sink: self.sink.save_state(),
        }
    }

    /// Restores state captured by [`Tracer::save_state`] onto a freshly
    /// configured tracer.
    ///
    /// # Errors
    ///
    /// Returns a description when the sink state does not fit the
    /// attached sink.
    pub fn restore_state(&mut self, state: &TracerState) -> Result<(), String> {
        self.sink.restore_state(&state.sink)?;
        self.base = state.base;
        self.committed = state.committed;
        self.samples = state.samples.clone();
        self.kernels = state.kernels.clone();
        Ok(())
    }

    /// Drains everything collected so far into a [`TraceReport`].
    pub fn take_report(&mut self) -> TraceReport {
        // Drain first: streaming sinks flush on drain, which is where a
        // truncated file latches its error.
        let events = self.sink.drain();
        TraceReport {
            events,
            samples: std::mem::take(&mut self.samples),
            kernels: std::mem::take(&mut self.kernels),
            dropped: self.sink.dropped(),
            sample_every: self.sample_every,
            totals: self.committed,
            total_cycles: self.base,
            sink_error: self.sink.io_error(),
        }
    }
}

/// A cheaply clonable, shared handle to a [`Tracer`].
///
/// The simulator is single-threaded, so `Rc<RefCell<_>>` suffices; every
/// instrumented structure (GPU, cores, hierarchy, Weaver units) holds a
/// clone of the same handle.
#[derive(Clone)]
pub struct TraceHandle(Rc<RefCell<Tracer>>);

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.borrow().fmt(f)
    }
}

impl TraceHandle {
    /// Creates a handle over a fresh [`Tracer`].
    pub fn new(cfg: TraceConfig) -> Self {
        TraceHandle(Rc::new(RefCell::new(Tracer::new(cfg))))
    }

    /// Creates a handle over a tracer writing into a caller-provided sink
    /// (e.g. a streaming [`crate::FileSink`]) instead of the default ring.
    pub fn with_sink(cfg: TraceConfig, sink: Box<dyn TraceSink>) -> Self {
        TraceHandle(Rc::new(RefCell::new(Tracer::with_sink(cfg, sink))))
    }

    /// Whether events of `cat` are being recorded (fast pre-check so
    /// callers can skip building event payloads).
    pub fn enabled(&self, cat: Category) -> bool {
        self.0.borrow().enabled(cat)
    }

    /// See [`Tracer::emit`].
    pub fn emit(&self, cycle: u64, core: u32, data: EventData) {
        self.0.borrow_mut().emit(cycle, core, data);
    }

    /// See [`Tracer::sample_due`].
    pub fn sample_due(&self, cycle: u64) -> bool {
        self.0.borrow().sample_due(cycle)
    }

    /// See [`Tracer::record_sample`].
    pub fn record_sample(&self, cycle: u64, launch_counters: &CounterSnapshot) {
        self.0.borrow_mut().record_sample(cycle, launch_counters);
    }

    /// See [`Tracer::kernel_begin`].
    pub fn kernel_begin(&self, name: &str) {
        self.0.borrow_mut().kernel_begin(name);
    }

    /// See [`Tracer::kernel_end`].
    pub fn kernel_end(&self, cycles: u64, final_counters: &CounterSnapshot) {
        self.0.borrow_mut().kernel_end(cycles, final_counters);
    }

    /// See [`Tracer::add_totals`].
    pub fn add_totals(&self, extra: &CounterSnapshot) {
        self.0.borrow_mut().add_totals(extra);
    }

    /// Drains the collected data. Later reports only contain data
    /// recorded since the previous call.
    pub fn report(&self) -> TraceReport {
        self.0.borrow_mut().take_report()
    }

    /// See [`Tracer::save_state`].
    pub fn save_state(&self) -> TracerState {
        self.0.borrow_mut().save_state()
    }

    /// See [`Tracer::restore_state`].
    ///
    /// # Errors
    ///
    /// Returns a description when the sink state does not fit.
    pub fn restore_state(&self, state: &TracerState) -> Result<(), String> {
        self.0.borrow_mut().restore_state(state)
    }
}

/// Resumable state of a [`Tracer`], captured into checkpoints: the
/// global time base, committed counter totals, collected samples and
/// kernel spans, and the sink's own state.
#[derive(Debug, Clone, PartialEq)]
pub struct TracerState {
    /// Total cycles of completed launches (the global-cycle base).
    pub base: u64,
    /// Counter totals committed by completed launches.
    pub committed: CounterSnapshot,
    /// Collected metric samples.
    pub samples: Vec<MetricSample>,
    /// Completed kernel spans.
    pub kernels: Vec<KernelSpan>,
    /// The event sink's state.
    pub sink: SinkState,
}

/// Everything a traced run collected, ready for export.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Buffered events (the newest `ring_capacity` of them).
    pub events: Vec<TraceEvent>,
    /// Periodic + kernel-end counter samples, in cycle order.
    pub samples: Vec<MetricSample>,
    /// Kernel launches on the global timeline.
    pub kernels: Vec<KernelSpan>,
    /// Events evicted from the ring.
    pub dropped: u64,
    /// The configured sampling interval (0 = kernel-end samples only).
    pub sample_every: u64,
    /// Final cumulative counter totals.
    pub totals: CounterSnapshot,
    /// Total cycles across all launches.
    pub total_cycles: u64,
    /// The sink's first I/O error, if any (streaming sinks only): the
    /// on-disk trace is incomplete and downstream consumers should treat
    /// it — and report it — as truncated.
    pub sink_error: Option<std::io::ErrorKind>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(sample_every: u64) -> TraceConfig {
        TraceConfig {
            categories: CategoryMask::ALL,
            sample_every,
            ring_capacity: 64,
        }
    }

    #[test]
    fn level_parsing() {
        assert_eq!(CategoryMask::parse("all"), Some(CategoryMask::ALL));
        let warp = CategoryMask::parse("warp").unwrap();
        assert!(warp.contains(Category::Warp));
        assert!(warp.contains(Category::Kernel));
        assert!(!warp.contains(Category::Mem));
        assert_eq!(CategoryMask::parse("bogus"), None);
    }

    #[test]
    fn disabled_categories_are_filtered() {
        let mut t = Tracer::new(TraceConfig {
            categories: CategoryMask::only(Category::Kernel),
            ..TraceConfig::default()
        });
        t.kernel_begin("k");
        t.emit(1, 0, EventData::DramTransaction { write: false });
        t.kernel_end(5, &CounterSnapshot::default());
        let r = t.take_report();
        assert_eq!(r.events.len(), 2); // launch + end only
    }

    #[test]
    fn sampling_cadence_hits_every_interval() {
        let t = TraceHandle::new(cfg(100));
        t.kernel_begin("k");
        let mut sampled = Vec::new();
        let mut counters = CounterSnapshot::default();
        // The launch loop advances in irregular jumps; samples land on the
        // first opportunity at-or-after each multiple of the interval.
        for cycle in [40u64, 99, 100, 150, 320, 321, 400, 990] {
            if t.sample_due(cycle) {
                counters.instructions += 1;
                t.record_sample(cycle, &counters);
                sampled.push(cycle);
            }
        }
        assert_eq!(sampled, vec![100, 320, 400, 990]);
        t.kernel_end(1000, &counters);
        let r = t.report();
        // 4 periodic samples + 1 kernel-end sample.
        assert_eq!(r.samples.len(), 5);
        assert_eq!(r.samples.last().unwrap().cycle, 1000);
        // Cumulative counters are monotone.
        for w in r.samples.windows(2) {
            assert!(w[1].counters.instructions >= w[0].counters.instructions);
        }
    }

    #[test]
    fn no_sampling_when_interval_is_zero() {
        let t = TraceHandle::new(cfg(0));
        t.kernel_begin("k");
        assert!(!t.sample_due(1_000_000));
        t.kernel_end(10, &CounterSnapshot::default());
        assert_eq!(t.report().samples.len(), 1); // kernel-end only
    }

    #[test]
    fn global_timeline_spans_launches() {
        let t = TraceHandle::new(cfg(0));
        t.kernel_begin("a");
        t.emit(3, 1, EventData::DramTransaction { write: false });
        t.kernel_end(10, &CounterSnapshot::default());
        t.kernel_begin("b");
        t.emit(2, 0, EventData::DramTransaction { write: true });
        t.kernel_end(20, &CounterSnapshot::default());
        let r = t.report();
        assert_eq!(r.total_cycles, 30);
        assert_eq!(r.kernels[1].start, 10);
        let cycles: Vec<u64> = r.events.iter().map(|e| e.cycle).collect();
        // a: launch@0, dram@3, end@10; b: launch@10, dram@12, end@30.
        assert_eq!(cycles, vec![0, 3, 10, 10, 12, 30]);
    }

    #[test]
    fn committed_totals_accumulate_across_launches() {
        let t = TraceHandle::new(cfg(0));
        let one = CounterSnapshot {
            instructions: 7,
            ..CounterSnapshot::default()
        };
        t.kernel_begin("a");
        t.kernel_end(10, &one);
        t.kernel_begin("b");
        t.kernel_end(10, &one);
        let r = t.report();
        assert_eq!(r.totals.instructions, 14);
        assert_eq!(r.samples[0].counters.instructions, 7);
        assert_eq!(r.samples[1].counters.instructions, 14);
    }
}
