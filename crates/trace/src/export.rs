//! Exporters: Chrome trace-event JSON and a flat metrics document.
//!
//! [`chrome_trace_json`] emits the subset of the Trace Event Format that
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing` load
//! directly: complete (`"X"`) spans for kernel launches and warp stalls,
//! instant (`"i"`) events for everything else, and counter (`"C"`) tracks
//! for the sampled metrics. One simulated cycle maps to one microsecond of
//! trace time; `pid` 0 is the GPU and `tid` is the core index.
//!
//! [`metrics_json`] is the machine-readable companion: run totals plus the
//! full sampled time series (stall breakdown, phase cycles, cache and DRAM
//! activity, Weaver counters), for plotting Figs. 4/17/18-style breakdowns
//! without re-running the simulation.

use std::fmt::Write as _;

use crate::event::{EventData, TraceEvent};
use crate::json::escape;
use crate::metrics::CounterSnapshot;
use crate::tracer::TraceReport;
use crate::Phase;

/// Renders `report` as a Chrome trace-event JSON document.
///
/// # Examples
///
/// ```
/// use sparseweaver_trace::{export, json, TraceConfig, TraceHandle};
///
/// let t = TraceHandle::new(TraceConfig::default());
/// t.kernel_begin("demo");
/// t.kernel_end(10, &Default::default());
/// let doc = export::chrome_trace_json(&t.report());
/// let v = json::parse(&doc).unwrap();
/// assert!(!v.get("traceEvents").unwrap().as_arr().unwrap().is_empty());
/// ```
pub fn chrome_trace_json(report: &TraceReport) -> String {
    let mut out = String::with_capacity(4096 + report.events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |out: &mut String, line: String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };

    // Metadata: name the process. Every event carries ts/pid/tid so the
    // document is uniformly shaped for downstream tooling.
    push(
        &mut out,
        "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"sparseweaver-gpu\"}}"
            .to_string(),
    );

    // Kernel launches as complete spans on the GPU-wide track.
    for k in &report.kernels {
        push(
            &mut out,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"kernel\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":0,\"args\":{{\"cycles\":{}}}}}",
                escape(&k.name),
                k.start,
                k.cycles.max(1),
                k.cycles
            ),
        );
    }

    // Buffered events.
    for e in &report.events {
        push(&mut out, event_json(e));
    }

    // Derived per-core warp-residency timeline: distinct warps observed
    // issuing since the current kernel launch (this plateaus at the
    // register-file residency cap, not the configured warp count), and
    // how many of them sit stalled while the core is blocked.
    let num_cores = report
        .events
        .iter()
        .map(|e| e.core as usize + 1)
        .max()
        .unwrap_or(0);
    let mut issued: Vec<std::collections::BTreeSet<u32>> = vec![Default::default(); num_cores];
    for e in &report.events {
        let core = e.core as usize;
        match &e.data {
            EventData::KernelLaunch { .. } => {
                for (c, set) in issued.iter_mut().enumerate() {
                    if !set.is_empty() {
                        set.clear();
                        push(
                            &mut out,
                            counter_json(
                                e.cycle,
                                &format!("warps:core{c}"),
                                &[("resident", 0), ("stalled", 0)],
                            ),
                        );
                    }
                }
            }
            EventData::WarpIssue { warp, .. } if issued[core].insert(*warp) => {
                push(
                    &mut out,
                    counter_json(
                        e.cycle,
                        &format!("warps:core{core}"),
                        &[("resident", issued[core].len() as u64), ("stalled", 0)],
                    ),
                );
            }
            EventData::WarpStall { cycles, .. } => {
                // The whole core is blocked for [cycle, cycle + cycles):
                // every resident warp is stalled, then none are.
                let n = issued[core].len() as u64;
                push(
                    &mut out,
                    counter_json(
                        e.cycle,
                        &format!("warps:core{core}"),
                        &[("resident", n), ("stalled", n)],
                    ),
                );
                push(
                    &mut out,
                    counter_json(
                        e.cycle + cycles,
                        &format!("warps:core{core}"),
                        &[("resident", n), ("stalled", 0)],
                    ),
                );
            }
            _ => {}
        }
    }

    // Counter tracks from the sampled metrics.
    for s in &report.samples {
        let c = &s.counters;
        let ts = s.cycle;
        push(
            &mut out,
            counter_json(
                ts,
                "stalls",
                &[
                    ("memory", c.stall_memory),
                    ("shared", c.stall_shared),
                    ("exec_dep", c.stall_exec_dep),
                    ("weaver", c.stall_weaver),
                    ("barrier", c.stall_barrier),
                    ("l1_queue", c.stall_l1_queue),
                ],
            ),
        );
        let phases: Vec<(&str, u64)> = Phase::ALL
            .iter()
            .map(|&p| (p.label(), c.phase_cycles[p as usize]))
            .collect();
        push(&mut out, counter_json(ts, "phase_cycles", &phases));
        push(
            &mut out,
            counter_json(
                ts,
                "cache",
                &[
                    ("l1_hits", c.l1_hits),
                    ("l1_misses", c.l1_accesses - c.l1_hits),
                    ("l2_hits", c.l2_hits),
                    ("l3_hits", c.l3_hits),
                    ("dram", c.dram_accesses),
                ],
            ),
        );
        push(
            &mut out,
            counter_json(
                ts,
                "instructions",
                &[("warp", c.instructions), ("thread", c.thread_instructions)],
            ),
        );
        push(
            &mut out,
            counter_json(
                ts,
                "weaver",
                &[
                    ("st_fetches", c.weaver_st_fetches),
                    ("dec_requests", c.weaver_dec_requests),
                    ("registrations", c.weaver_registrations),
                ],
            ),
        );
        push(
            &mut out,
            counter_json(
                ts,
                "faults",
                &[
                    ("injected", c.faults_injected),
                    ("weaver_drops", c.weaver_drops),
                    ("weaver_retries", c.weaver_retries),
                    ("weaver_fallbacks", c.weaver_fallbacks),
                ],
            ),
        );
        push(
            &mut out,
            counter_json(
                ts,
                "occupancy",
                &[
                    ("kernel_high_water", c.kernel_high_water),
                    ("cap", c.occupancy_cap),
                    ("warps_resident", c.warps_resident),
                    ("warps_configured", c.warps_configured),
                ],
            ),
        );
    }

    out.push_str("\n]}\n");
    out
}

fn counter_json(ts: u64, name: &str, fields: &[(&str, u64)]) -> String {
    let args: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("\"{}\":{v}", escape(k)))
        .collect();
    format!(
        "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\"tid\":0,\
         \"args\":{{{}}}}}",
        args.join(",")
    )
}

/// One event as a Chrome trace-event JSON object (no trailing newline).
///
/// [`crate::FileSink`] writes one of these per line, so a `.jsonl` trace
/// file concatenates into a Chrome/Perfetto `traceEvents` array with a
/// `jq -s` one-liner.
pub fn event_json(e: &TraceEvent) -> String {
    let (name, cat, args) = match &e.data {
        EventData::KernelLaunch { name } => (
            "kernel_launch".to_string(),
            "kernel",
            format!("\"kernel\":\"{}\"", escape(name)),
        ),
        EventData::KernelEnd { name, cycles } => (
            "kernel_end".to_string(),
            "kernel",
            format!("\"kernel\":\"{}\",\"cycles\":{cycles}", escape(name)),
        ),
        EventData::PhaseBegin { warp, phase } => (
            format!("phase:{}", phase.label()),
            "warp",
            format!("\"warp\":{warp},\"phase\":\"{}\"", phase.label()),
        ),
        EventData::WarpIssue { warp, pc, active } => (
            "issue".to_string(),
            "warp",
            format!("\"warp\":{warp},\"pc\":{pc},\"active\":{active}"),
        ),
        EventData::WarpStall {
            cause,
            phase,
            cycles,
        } => {
            // Stalls are complete spans: [cycle, cycle + cycles).
            return format!(
                "{{\"name\":\"stall:{}\",\"cat\":\"warp\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":{},\"args\":{{\"cause\":\"{}\",\"phase\":\"{}\"}}}}",
                cause.label(),
                e.cycle,
                (*cycles).max(1),
                e.core,
                cause.label(),
                phase.label()
            );
        }
        EventData::Divergence {
            warp,
            pc,
            taken,
            not_taken,
        } => (
            "divergence".to_string(),
            "warp",
            format!("\"warp\":{warp},\"pc\":{pc},\"taken\":{taken},\"not_taken\":{not_taken}"),
        ),
        EventData::CacheAccess {
            level,
            write,
            queue_delay,
        } => (
            format!(
                "mem:{}:{}",
                level.label(),
                if *write { "write" } else { "read" }
            ),
            "mem",
            format!(
                "\"level\":\"{}\",\"write\":{write},\"queue_delay\":{queue_delay}",
                level.label()
            ),
        ),
        EventData::DramTransaction { write } => {
            ("dram".to_string(), "mem", format!("\"write\":{write}"))
        }
        EventData::WeaverTransition { from, to } => (
            format!("fsm:{}", to.label()),
            "weaver",
            format!("\"from\":\"{}\",\"to\":\"{}\"", from.label(), to.label()),
        ),
        EventData::WeaverTable { op, count } => (
            format!("weaver:{}", op.label()),
            "weaver",
            format!("\"op\":\"{}\",\"count\":{count}", op.label()),
        ),
        EventData::WeaverRetry { kernel, attempt } => (
            "weaver_retry".to_string(),
            "kernel",
            format!("\"kernel\":\"{}\",\"attempt\":{attempt}", escape(kernel)),
        ),
        EventData::WeaverFallback { kernel, schedule } => (
            "weaver_fallback".to_string(),
            "kernel",
            format!(
                "\"kernel\":\"{}\",\"schedule\":\"{}\"",
                escape(kernel),
                escape(schedule)
            ),
        ),
    };
    format!(
        "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
         \"pid\":0,\"tid\":{},\"args\":{{{args}}}}}",
        escape(&name),
        e.cycle,
        e.core
    )
}

/// Renders `report` as a flat metrics JSON document: run totals plus the
/// sampled counter time series.
///
/// # Examples
///
/// ```
/// use sparseweaver_trace::{export, json, TraceConfig, TraceHandle};
///
/// let t = TraceHandle::new(TraceConfig::default());
/// t.kernel_begin("demo");
/// t.kernel_end(10, &Default::default());
/// let v = json::parse(&export::metrics_json(&t.report())).unwrap();
/// assert_eq!(v.get("total_cycles").unwrap().as_num(), Some(10.0));
/// ```
pub fn metrics_json(report: &TraceReport) -> String {
    let mut out = String::with_capacity(1024 + report.samples.len() * 256);
    out.push_str("{\"schema\":\"sparseweaver-metrics-v1\",\n");
    let _ = writeln!(out, "\"sample_every\":{},", report.sample_every);
    let _ = writeln!(out, "\"total_cycles\":{},", report.total_cycles);
    let _ = writeln!(out, "\"dropped_events\":{},", report.dropped);
    out.push_str("\"kernels\":[");
    for (i, k) in report.kernels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"start\":{},\"cycles\":{}}}",
            escape(&k.name),
            k.start,
            k.cycles
        );
    }
    out.push_str("],\n\"totals\":");
    out.push_str(&counters_json(&report.totals));
    out.push_str(",\n\"samples\":[\n");
    for (i, s) in report.samples.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "{{\"cycle\":{},\"counters\":{}}}",
            s.cycle,
            counters_json(&s.counters)
        );
    }
    out.push_str("\n]}\n");
    out
}

/// One [`CounterSnapshot`] as a JSON object.
///
/// The `stalls` object mixes units: `memory`, `shared`, `exec_dep` and
/// `weaver` are issue-slot core-cycles and sum to the explicit
/// `stall_total`; `l1_queue` is summed per *access* (port-contention
/// delay) and `barrier` per *warp* (warp-cycles parked at a barrier), so
/// neither contributes to `stall_total`.
pub fn counters_json(c: &CounterSnapshot) -> String {
    let phases: Vec<String> = Phase::ALL
        .iter()
        .map(|&p| format!("\"{}\":{}", escape(p.label()), c.phase_cycles[p as usize]))
        .collect();
    let stall_total = c.stall_memory + c.stall_shared + c.stall_exec_dep + c.stall_weaver;
    format!(
        "{{\"instructions\":{},\"thread_instructions\":{},\
         \"stalls\":{{\"memory\":{},\"shared\":{},\"exec_dep\":{},\"l1_queue\":{},\
         \"barrier\":{},\"weaver\":{},\"stall_total\":{stall_total}}},\
         \"phase_cycles\":{{{}}},\
         \"cache\":{{\"l1_accesses\":{},\"l1_hits\":{},\"l2_accesses\":{},\"l2_hits\":{},\
         \"l3_accesses\":{},\"l3_hits\":{},\"dram_accesses\":{}}},\
         \"shared\":{{\"reads\":{},\"writes\":{}}},\
         \"device_mem\":{{\"reads\":{},\"writes\":{}}},\
         \"weaver\":{{\"st_fetches\":{},\"dec_requests\":{},\"registrations\":{}}},\
         \"faults\":{{\"injected\":{},\"weaver_drops\":{},\"weaver_retries\":{},\
         \"weaver_fallbacks\":{}}},\
         \"occupancy\":{{\"kernel_high_water\":{},\"cap\":{},\"warps_resident\":{},\
         \"warps_configured\":{}}}}}",
        c.instructions,
        c.thread_instructions,
        c.stall_memory,
        c.stall_shared,
        c.stall_exec_dep,
        c.stall_l1_queue,
        c.stall_barrier,
        c.stall_weaver,
        phases.join(","),
        c.l1_accesses,
        c.l1_hits,
        c.l2_accesses,
        c.l2_hits,
        c.l3_accesses,
        c.l3_hits,
        c.dram_accesses,
        c.shared_reads,
        c.shared_writes,
        c.mem_reads,
        c.mem_writes,
        c.weaver_st_fetches,
        c.weaver_dec_requests,
        c.weaver_registrations,
        c.faults_injected,
        c.weaver_drops,
        c.weaver_retries,
        c.weaver_fallbacks,
        c.kernel_high_water,
        c.occupancy_cap,
        c.warps_resident,
        c.warps_configured,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventData, MemLevel, StallCause, TableOp, WeaverState};
    use crate::json;
    use crate::tracer::{TraceConfig, TraceHandle};

    fn sample_report() -> TraceReport {
        let t = TraceHandle::new(TraceConfig {
            sample_every: 5,
            ..TraceConfig::default()
        });
        t.kernel_begin("bfs_step");
        t.emit(
            1,
            0,
            EventData::WarpIssue {
                warp: 2,
                pc: 7,
                active: 4,
            },
        );
        t.emit(
            2,
            1,
            EventData::CacheAccess {
                level: MemLevel::L2,
                write: false,
                queue_delay: 1,
            },
        );
        t.emit(
            3,
            0,
            EventData::WarpStall {
                cause: StallCause::Memory,
                phase: Phase::GatherSum,
                cycles: 4,
            },
        );
        t.emit(
            4,
            0,
            EventData::WeaverTransition {
                from: WeaverState::S0Init,
                to: WeaverState::S1LoadCed,
            },
        );
        t.emit(
            4,
            0,
            EventData::WeaverTable {
                op: TableOp::StWrite,
                count: 3,
            },
        );
        t.emit(5, 1, EventData::DramTransaction { write: true });
        let mut counters = CounterSnapshot {
            instructions: 9,
            ..CounterSnapshot::default()
        };
        counters.phase_cycles[Phase::GatherSum as usize] = 4;
        t.record_sample(5, &counters);
        t.kernel_end(10, &counters);
        t.report()
    }

    #[test]
    fn chrome_trace_parses_and_is_well_formed() {
        let doc = chrome_trace_json(&sample_report());
        let v = json::parse(&doc).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(events.len() > 8, "got {} events", events.len());
        for e in events {
            let ph = e.get("ph").unwrap().as_str().unwrap();
            assert!(matches!(ph, "M" | "X" | "i" | "C"), "bad ph {ph}");
            assert!(e.get("ts").unwrap().as_num().is_some());
            assert!(e.get("pid").unwrap().as_num().is_some());
            assert!(e.get("tid").unwrap().as_num().is_some());
            if ph == "X" {
                assert!(e.get("dur").unwrap().as_num().unwrap() >= 1.0);
            }
        }
        // Kernel span, a stall span, and counter tracks are all present.
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
            .collect();
        assert!(names.contains(&"bfs_step"));
        assert!(names.contains(&"stall:memory"));
        assert!(names.contains(&"stalls"));
        assert!(names.contains(&"phase_cycles"));
        assert!(names.contains(&"mem:L2:read"));
        assert!(names.contains(&"weaver:st_write"));
    }

    #[test]
    fn metrics_document_carries_the_series() {
        let doc = metrics_json(&sample_report());
        let v = json::parse(&doc).expect("valid JSON");
        assert_eq!(v.get("total_cycles").unwrap().as_num(), Some(10.0));
        let samples = v.get("samples").unwrap().as_arr().unwrap();
        assert_eq!(samples.len(), 2); // periodic + kernel-end
        let c = samples[0].get("counters").unwrap();
        assert_eq!(
            c.get("stalls").unwrap().get("memory").unwrap().as_num(),
            Some(0.0)
        );
        assert_eq!(
            c.get("phase_cycles")
                .unwrap()
                .get("Gather & Sum")
                .unwrap()
                .as_num(),
            Some(4.0)
        );
        assert_eq!(c.get("instructions").unwrap().as_num(), Some(9.0));
        let kernels = v.get("kernels").unwrap().as_arr().unwrap();
        assert_eq!(kernels[0].get("name").unwrap().as_str(), Some("bfs_step"));
        // stall_total sums the issue-slot categories only: l1_queue is
        // per-access and barrier per-warp, so neither participates.
        let totals = v.get("totals").unwrap().get("stalls").unwrap();
        let n = |k: &str| totals.get(k).unwrap().as_num().unwrap();
        assert_eq!(
            n("stall_total"),
            n("memory") + n("shared") + n("exec_dep") + n("weaver")
        );
    }

    #[test]
    fn warp_residency_track_is_derived_from_issue_and_stall_events() {
        let t = TraceHandle::new(TraceConfig::default());
        t.kernel_begin("k");
        for w in 0..2 {
            t.emit(
                w as u64 + 1,
                0,
                EventData::WarpIssue {
                    warp: w,
                    pc: 0,
                    active: 4,
                },
            );
        }
        // Re-issues must not grow the resident count.
        t.emit(
            3,
            0,
            EventData::WarpIssue {
                warp: 0,
                pc: 1,
                active: 4,
            },
        );
        t.emit(
            4,
            0,
            EventData::WarpStall {
                cause: StallCause::Memory,
                phase: Phase::GatherSum,
                cycles: 6,
            },
        );
        t.kernel_end(12, &CounterSnapshot::default());
        let doc = chrome_trace_json(&t.report());
        let v = json::parse(&doc).unwrap();
        let track: Vec<_> = v
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("warps:core0"))
            .map(|e| {
                (
                    e.get("ts").unwrap().as_num().unwrap() as u64,
                    e.get("args")
                        .unwrap()
                        .get("resident")
                        .unwrap()
                        .as_num()
                        .unwrap() as u64,
                    e.get("args")
                        .unwrap()
                        .get("stalled")
                        .unwrap()
                        .as_num()
                        .unwrap() as u64,
                )
            })
            .collect();
        // Ramp to 2 resident (no third point for the re-issue), then a
        // stall window [4, 10) covering both warps.
        assert_eq!(track, vec![(1, 1, 0), (2, 2, 0), (4, 2, 2), (10, 2, 0)]);
    }

    #[test]
    fn occupancy_gauges_reach_both_documents() {
        let t = TraceHandle::new(TraceConfig::default());
        t.kernel_begin("k");
        let counters = CounterSnapshot {
            kernel_high_water: 16,
            occupancy_cap: 2,
            warps_resident: 2,
            warps_configured: 4,
            ..CounterSnapshot::default()
        };
        t.kernel_end(10, &counters);
        let report = t.report();
        let chrome = json::parse(&chrome_trace_json(&report)).unwrap();
        let occ = chrome
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("occupancy"))
            .expect("occupancy counter track");
        assert_eq!(
            occ.get("args").unwrap().get("cap").unwrap().as_num(),
            Some(2.0)
        );
        let metrics = json::parse(&metrics_json(&report)).unwrap();
        let o = metrics.get("totals").unwrap().get("occupancy").unwrap();
        assert_eq!(o.get("kernel_high_water").unwrap().as_num(), Some(16.0));
        assert_eq!(o.get("warps_resident").unwrap().as_num(), Some(2.0));
        assert_eq!(o.get("warps_configured").unwrap().as_num(), Some(4.0));
    }

    #[test]
    fn escaped_kernel_names_survive_round_trip() {
        let t = TraceHandle::new(TraceConfig::default());
        t.kernel_begin("odd \"name\"\n");
        t.kernel_end(1, &CounterSnapshot::default());
        let doc = chrome_trace_json(&t.report());
        assert!(json::parse(&doc).is_ok());
    }
}
