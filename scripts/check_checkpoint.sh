#!/usr/bin/env bash
# CI gate for crash-safe simulation (docs/robustness.md): an interrupted
# run resumed from its `swckpt-v1` checkpoint — and an interrupted
# journaled campaign resumed from its JSONL journal — must reproduce the
# uninterrupted artifacts byte-for-byte.
#
# Part 1: a fixed-seed `swsim run` is killed mid-run (SIGTERM while the
# simulation is in flight, with the deterministic --stop-after-launches
# bound as a fallback on very fast machines); `swsim resume` must then
# produce a metrics.json byte-identical to the uninterrupted golden.
#
# Part 2: a journaled `swfault` campaign is interrupted (journal
# truncated to a completed-run prefix, exactly what a kill leaves
# behind, including a torn final line); `swfault --resume` must render
# the summary byte-identical to the uninterrupted golden at --jobs 1
# AND --jobs 8.
#
# Exit code 5 ("stopped early, resumable") is asserted on both
# interruption paths.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

cargo build --release --quiet --bin swsim --bin swfault
SWSIM=target/release/swsim
SWFAULT=target/release/swfault

# ---- Part 1: swsim checkpoint/resume ---------------------------------------
RUN_ARGS=(run --gen powerlaw:2000:40000:2.0:7 --algo pr --iters 12
          --schedule sw --config small)

"$SWSIM" "${RUN_ARGS[@]}" --metrics-out "$WORK/golden.json" >/dev/null

# Interrupt a checkpointing run mid-flight. SIGTERM lands while the
# simulation is running; --stop-after-launches backstops the race so the
# run always stops early even if the signal arrives too late.
set +e
"$SWSIM" "${RUN_ARGS[@]}" \
    --metrics-out "$WORK/resumed.json" \
    --checkpoint-out "$WORK/run.swckpt" --checkpoint-every 1 \
    --stop-after-launches 5 >/dev/null 2>"$WORK/stop.err" &
PID=$!
sleep 0.2 && kill -TERM "$PID" 2>/dev/null
wait "$PID"
CODE=$?
set -e
if [ "$CODE" -ne 5 ]; then
    echo "FAIL: interrupted swsim run exited $CODE, expected 5" >&2
    cat "$WORK/stop.err" >&2
    exit 1
fi
if [ ! -s "$WORK/run.swckpt" ]; then
    echo "FAIL: no checkpoint written by the interrupted run" >&2
    exit 1
fi
if [ -e "$WORK/resumed.json" ]; then
    echo "FAIL: interrupted run published a partial metrics artifact" >&2
    exit 1
fi

"$SWSIM" resume "$WORK/run.swckpt" >/dev/null

if ! cmp -s "$WORK/golden.json" "$WORK/resumed.json"; then
    echo "FAIL: resumed metrics.json differs from the uninterrupted run" >&2
    diff <(head -c 400 "$WORK/golden.json") <(head -c 400 "$WORK/resumed.json") >&2 || true
    exit 1
fi
echo "ok: swsim resume after a mid-run kill reproduces metrics.json byte-for-byte"
# Keep the proven-resumable checkpoint around for the CI artifact upload.
cp "$WORK/run.swckpt" run.swckpt

# ---- Part 2: swfault journal/resume ----------------------------------------
CAMPAIGN=(--inject reg=0.002,mem=0.001,weaver-drop=0.02
          --runs 64 --seed 42 --gen powerlaw:64:400:2.0:7 --algo pr --iters 3)

"$SWFAULT" "${CAMPAIGN[@]}" --jobs 2 > "$WORK/campaign_golden.json" 2>/dev/null

# A full journaled campaign changes no output bytes.
"$SWFAULT" "${CAMPAIGN[@]}" --jobs 2 --journal "$WORK/journal.jsonl" \
    > "$WORK/campaign_journaled.json" 2>/dev/null
cmp -s "$WORK/campaign_golden.json" "$WORK/campaign_journaled.json" || {
    echo "FAIL: enabling --journal changed the campaign summary" >&2; exit 1; }

# Interrupt the campaign via the wall-clock watchdog: exit 5, completed
# prefix journaled. (A huge run count guarantees the 1s budget fires
# first.)
set +e
"$SWFAULT" --inject reg=0.002,mem=0.001,weaver-drop=0.02 \
    --runs 100000 --seed 9 --gen powerlaw:64:400:2.0:7 --algo pr --iters 3 \
    --jobs 2 --journal "$WORK/wd.jsonl" --max-wall-secs 1 \
    >/dev/null 2>"$WORK/wd.err"
CODE=$?
set -e
if [ "$CODE" -ne 5 ]; then
    echo "FAIL: watchdog-stopped campaign exited $CODE, expected 5" >&2
    cat "$WORK/wd.err" >&2
    exit 1
fi
echo "ok: swfault watchdog stop exits 5 with the journal preserved"

# Simulate a kill of the 64-run campaign: keep the header + 20 completed
# runs and tear the final line in half (a mid-append crash).
head -21 "$WORK/journal.jsonl" > "$WORK/torn.jsonl"
head -c -9 "$WORK/torn.jsonl" > "$WORK/torn2.jsonl" && mv "$WORK/torn2.jsonl" "$WORK/torn.jsonl"

for JOBS in 1 8; do
    cp "$WORK/torn.jsonl" "$WORK/torn_j$JOBS.jsonl"
    "$SWFAULT" "${CAMPAIGN[@]}" --jobs "$JOBS" \
        --journal "$WORK/torn_j$JOBS.jsonl" --resume \
        > "$WORK/resumed_j$JOBS.json" 2>/dev/null
    if ! cmp -s "$WORK/campaign_golden.json" "$WORK/resumed_j$JOBS.json"; then
        echo "FAIL: resumed campaign summary differs at --jobs $JOBS" >&2
        exit 1
    fi
done
echo "ok: interrupted swfault --resume is byte-identical at --jobs 1 and --jobs 8"
