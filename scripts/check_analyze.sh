#!/usr/bin/env bash
# CI gate for the abstract-interpretation analyzer: `swlint --analyze
# --json` over the whole built-in kernel zoo (every algorithm x every
# schedule, default config) must render byte-for-byte identical to the
# committed golden.
#
# The analyzer is a deterministic forward fixpoint — its transfer
# functions are all-integer, diagnostics are sorted by (pc, rule), and
# the JSON renderer emits fields in a fixed order — so the kernel
# templates and the machine geometry fully determine the bytes. Any
# drift — a template change, a transfer-function change, a new or
# retired SW-L5xx finding — shows up as a diff against the golden.
#
# The gate also re-checks two analyzer invariants the golden encodes
# implicitly: the fixpoint converged on every kernel (swlint exits
# nonzero otherwise) and no shipped kernel has a proved out-of-bounds
# access (no "SW-L501" anywhere in the document).
#
# The fresh document is left at ./analyze.json (gitignored) so CI can
# upload it for cross-commit comparison.
#
# To regenerate after an intentional change:
#   cargo run --release --bin swlint -- --analyze --json \
#     > scripts/analyze_golden.json
set -euo pipefail
cd "$(dirname "$0")/.."

GOLDEN=scripts/analyze_golden.json
OUT=analyze.json

cargo run --release --quiet --bin swlint -- --analyze --json > "$OUT"

if ! diff -u "$GOLDEN" "$OUT"; then
    echo "FAIL: analyzer output drifted from $GOLDEN" >&2
    echo "If the change is intentional, regenerate the golden (see header)." >&2
    exit 1
fi
echo "ok: kernel-zoo analyzer output is byte-identical to the golden"

if grep -q 'SW-L501' "$OUT"; then
    echo "FAIL: a shipped kernel has a proved out-of-bounds access" >&2
    exit 1
fi
echo "ok: no proved out-of-bounds access in any shipped kernel"
