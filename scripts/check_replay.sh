#!/usr/bin/env bash
# CI gate for the memory-trace capture/replay mode, in three parts:
#
# 1. Byte gate: a fixed-seed captured BFS run swept over a fixed
#    16-point L1 grid must render a replay.json byte-for-byte identical
#    to the committed golden. The capture records architecturally-
#    ordered line accesses only, the sweep collects results in grid
#    order, and the renderer is all-integer — so `(graph generator,
#    algorithm, schedule, config, grid)` fully determines the bytes.
#    Any drift — in coalescing, the cache model, the trace format, or
#    the renderer — shows up as a diff against the golden.
#
# 2. Self-check: `swreplay verify` must reproduce the live run's
#    LevelStats bit for bit (the hierarchy is a pure function of its
#    call sequence; the trace *is* that call sequence). swreplay exits 1
#    on a mismatch, so `set -e` enforces this.
#
# 3. Speed assertion: the point of replay is that sweeping cache
#    geometries does not require re-simulating cores. A 16-config sweep
#    must be at least MIN_SPEEDUP_X times faster than 16 full
#    simulations (estimated as 16x one measured run, same binary, same
#    warm graph-generator path).
#
# The fresh artifact is left at ./replay.json (gitignored) so CI can
# upload it for run-to-run differential analysis across commits.
#
# To regenerate after an intentional change (e.g. a schema extension —
# bump sparseweaver-replay-v1 on breaks):
#   cargo run --release --bin swsim -- run \
#     --gen powerlaw:600:6000:1.9:11 --algo bfs --schedule sw \
#     --mem-trace-out replay_capture.swmtrace
#   cargo run --release --bin swreplay -- sweep --trace replay_capture.swmtrace \
#     --l1-sizes 4096,8192,16384,32768,65536,131072,262144,524288 \
#     --ways 2,4 --out scripts/replay_golden.json
set -euo pipefail
cd "$(dirname "$0")/.."

MIN_SPEEDUP_X="${MIN_SPEEDUP_X:-10}"
GOLDEN=scripts/replay_golden.json
TRACE=replay_capture.swmtrace
OUT=replay.json

# Build once up front so timing below measures runs, not compilation.
cargo build --release --quiet --bin swsim --bin swreplay

sim_start=$(date +%s%N)
./target/release/swsim run \
    --gen powerlaw:600:6000:1.9:11 --algo bfs --schedule sw \
    --mem-trace-out "$TRACE" > /dev/null
sim_ns=$(( $(date +%s%N) - sim_start ))
echo "ok: capture run complete ($((sim_ns / 1000000)) ms)"

./target/release/swreplay verify --trace "$TRACE" > /dev/null
echo "ok: replay under the capture config is bit-identical to the live run"

sweep_start=$(date +%s%N)
./target/release/swreplay sweep --trace "$TRACE" \
    --l1-sizes 4096,8192,16384,32768,65536,131072,262144,524288 \
    --ways 2,4 --jobs 4 --out "$OUT"
sweep_ns=$(( $(date +%s%N) - sweep_start ))
echo "ok: 16-config sweep complete ($((sweep_ns / 1000000)) ms)"

if ! diff -u "$GOLDEN" "$OUT"; then
    echo "FAIL: replay artifact drifted from $GOLDEN" >&2
    echo "If the change is intentional, regenerate the golden (see header)." >&2
    exit 1
fi
echo "ok: fixed-seed replay.json is byte-identical to the golden artifact"

# Jobs-invariance: the artifact bytes must not depend on the job count.
./target/release/swreplay sweep --trace "$TRACE" \
    --l1-sizes 4096,8192,16384,32768,65536,131072,262144,524288 \
    --ways 2,4 --jobs 1 --out "$OUT.serial"
if ! cmp -s "$OUT" "$OUT.serial"; then
    echo "FAIL: --jobs 4 and --jobs 1 rendered different replay.json bytes" >&2
    exit 1
fi
rm -f "$OUT.serial"
echo "ok: sweep artifact is byte-identical across --jobs values"

# 16 full sims vs one 16-config sweep.
full_ns=$(( sim_ns * 16 ))
if (( full_ns < MIN_SPEEDUP_X * sweep_ns )); then
    echo "FAIL: 16-config sweep took $((sweep_ns / 1000000)) ms but 16 full" \
         "sims would take ~$((full_ns / 1000000)) ms — less than" \
         "${MIN_SPEEDUP_X}x faster; replay has lost its reason to exist" >&2
    exit 1
fi
echo "ok: sweep is >= ${MIN_SPEEDUP_X}x faster than re-simulating" \
     "(16 sims ~$((full_ns / 1000000)) ms vs sweep $((sweep_ns / 1000000)) ms)"

rm -f "$TRACE"
