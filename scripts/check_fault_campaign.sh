#!/usr/bin/env bash
# CI gate for the fault-injection campaign runner: a fixed-seed 200-run
# BFS campaign must reproduce byte-for-byte.
#
# The campaign derives every per-run injector seed from the campaign
# seed (SplitMix64 child streams), so `(spec, seed, runs)` fully
# determines the machine's fault history and therefore the summary.
# Any drift — in the injector, the retry/fallback protocol, the
# classifier, or the simulator's fault surfaces — shows up as a diff
# against the committed golden summary.
#
# `swfault` itself enforces the other two acceptance properties: it
# exits non-zero if any run panicked (the machine model must surface
# faults as typed errors) or if the four outcome classes do not sum to
# the number of runs.
#
# A second fixed-seed campaign runs with `--no-fallback` at rates chosen
# so every outcome class — including hang — appears: dropping Weaver
# responses without the S_wm degradation surfaces Weaver timeouts as
# hangs deterministically. Beyond byte-identity, this gate asserts all
# four classes are non-zero, closing the hang-coverage gap (ROADMAP).
#
# To regenerate after an intentional change (e.g. a new fault site):
#   cargo run --release --bin swfault -- \
#     --inject reg=0.0001,mem=0.00005,fetch=0.00005,weaver-drop=0.05 \
#     --runs 200 --seed 2025 > scripts/fault_campaign_golden.json
#   cargo run --release --bin swfault -- \
#     --inject reg=0.002,mem=0.001,fetch=0.001,weaver-drop=0.02 \
#     --runs 200 --seed 7 --no-fallback > scripts/fault_campaign_hang_golden.json
set -euo pipefail
cd "$(dirname "$0")/.."

GOLDEN=scripts/fault_campaign_golden.json
HANG_GOLDEN=scripts/fault_campaign_hang_golden.json
OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

cargo run --release --quiet --bin swfault -- \
    --inject reg=0.0001,mem=0.00005,fetch=0.00005,weaver-drop=0.05 \
    --runs 200 --seed 2025 > "$OUT"

if ! diff -u "$GOLDEN" "$OUT"; then
    echo "FAIL: campaign summary drifted from $GOLDEN" >&2
    echo "If the change is intentional, regenerate the golden (see header)." >&2
    exit 1
fi
echo "ok: 200-run fixed-seed campaign is byte-identical to the golden summary"

cargo run --release --quiet --bin swfault -- \
    --inject reg=0.002,mem=0.001,fetch=0.001,weaver-drop=0.02 \
    --runs 200 --seed 7 --no-fallback > "$OUT"

if ! diff -u "$HANG_GOLDEN" "$OUT"; then
    echo "FAIL: no-fallback campaign summary drifted from $HANG_GOLDEN" >&2
    echo "If the change is intentional, regenerate the golden (see header)." >&2
    exit 1
fi
for class in masked sdc detected_crash hang; do
    if ! grep -q "\"$class\":[1-9]" "$OUT"; then
        echo "FAIL: outcome class \"$class\" is zero — campaign no longer covers all four classes" >&2
        exit 1
    fi
done
echo "ok: no-fallback campaign is byte-identical and covers all four outcome classes"
