#!/usr/bin/env bash
# CI gate for the `trace_overhead` Criterion group: the disabled-by-default
# tracer hooks must not cost measurable simulation time.
#
# The gate is self-baselining so runner speed cancels out: `tracing_off`
# is compared against `tracing_on` from the same run. Enabled tracing
# performs strictly more work (event recording + counter sampling), so a
# healthy disabled path is faster. If the hooks start costing when
# tracing is off, tracing_off converges on tracing_on — the gate fails
# once tracing_off exceeds tracing_on by more than TOLERANCE_PCT.
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE_PCT="${TOLERANCE_PCT:-10}"

out=$(cargo bench -p sparseweaver-bench --bench paper_artifacts -- trace_overhead)
echo "$out"

off=$(echo "$out" | awk '$1 == "trace_overhead/tracing_off" { print $3 }')
on=$(echo "$out" | awk '$1 == "trace_overhead/tracing_on" { print $3 }')

if [ -z "$off" ] || [ -z "$on" ]; then
    echo "FAIL: trace_overhead group did not report both tracing_off and tracing_on" >&2
    exit 1
fi

awk -v off="$off" -v on="$on" -v tol="$TOLERANCE_PCT" 'BEGIN {
    limit = on * (100 + tol) / 100
    printf "tracing_off %d ns/iter vs tracing_on %d ns/iter (limit %.0f, tolerance %s%%)\n",
        off, on, limit, tol
    if (off > limit) {
        print "FAIL: disabled tracing regressed — the off-path hooks are no longer free"
        exit 1
    }
    print "ok: disabled tracing within tolerance"
}'
