#!/usr/bin/env bash
# CI gate for per-kernel register pressure: every built-in kernel's
# post-regalloc register high-water mark must stay within the budget
# committed in scripts/register_budgets.txt.
#
# `swlint --regs` prints one `LABEL PRE POST` line per kernel on the
# default (eval) config; POST is the high-water mark after the
# liveness-based register allocator runs, i.e. what the simulated GPU's
# occupancy model actually charges against the register file. A kernel
# exceeding its budget silently lowers achievable occupancy on
# register-file-limited configs, so growth must be deliberate: raise the
# budget in the same change that grows the kernel. Kernels missing from
# the budget file (newly added ones) fail too — add a line for them.
#
# Regenerate after an intentional change:
#   cargo run --release --bin swlint -- --regs | awk '{print $1, $3}' \
#     > scripts/register_budgets.txt
set -euo pipefail
cd "$(dirname "$0")/.."

BUDGETS="scripts/register_budgets.txt"

out=$(cargo run --release --quiet --bin swlint -- --regs)

if [ -z "$out" ]; then
    echo "FAIL: swlint --regs produced no output" >&2
    exit 1
fi

echo "$out" | awk -v budgets="$BUDGETS" '
BEGIN {
    while ((getline line < budgets) > 0) {
        split(line, f, " ")
        if (f[1] != "") budget[f[1]] = f[2]
    }
    close(budgets)
}
{
    label = $1; post = $3
    checked++
    if (!(label in budget)) {
        printf "FAIL: %s (post-regalloc hw %d) has no committed budget\n", label, post
        bad++
        next
    }
    if (post > budget[label]) {
        printf "FAIL: %s uses %d registers, budget is %d\n", label, post, budget[label]
        bad++
    } else if (post < budget[label]) {
        printf "note: %s improved to %d registers (budget %d) — consider tightening\n",
            label, post, budget[label]
    }
}
END {
    if (checked == 0) { print "FAIL: no kernels checked"; exit 1 }
    if (bad > 0) {
        printf "%d of %d kernel(s) over budget or unbudgeted — update %s deliberately\n",
            bad, checked, budgets
        exit 1
    }
    printf "ok: %d kernel(s) within register budgets\n", checked
}'
