#!/usr/bin/env bash
# CI gate for the `sim_hot_loop` Criterion group: the fast-path engine
# (pre-decoded kernels + idle-cycle fast-forward) must not regress.
#
# The gate is self-baselining so runner speed cancels out: the BFS run
# with fast-forward ON is compared against the identical run with the
# per-core blocked cache disabled, from the same bench invocation. The
# fast-forwarding engine does strictly less per-cycle work, so a healthy
# fast path is at least as fast. If it ever exceeds the disabled path by
# more than TOLERANCE_PCT, the optimisation has rotted — fail.
#
# The group's numbers are also rendered into BENCH_sim.json (ns/iter and
# simulated runs per second per entry) for tracking across commits; see
# docs/performance.md for how to read it.
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE_PCT="${TOLERANCE_PCT:-10}"
OUT_JSON="${OUT_JSON:-BENCH_sim.json}"

out=$(cargo bench -p sparseweaver-bench --bench paper_artifacts -- sim_hot_loop)
echo "$out"

entries="bfs_weaver sssp_weaver bfs_swm sssp_swm bfs_weaver_fastforward_off campaign_20runs"
{
    echo "{"
    first=1
    for e in $entries; do
        ns=$(echo "$out" | awk -v id="sim_hot_loop/$e" '$1 == id { print $3 }')
        if [ -z "$ns" ]; then
            echo "FAIL: sim_hot_loop group did not report $e" >&2
            exit 1
        fi
        [ "$first" -eq 1 ] || echo ","
        first=0
        awk -v e="$e" -v ns="$ns" 'BEGIN {
            printf "  \"%s\": { \"ns_per_iter\": %d, \"runs_per_sec\": %.3f }", e, ns, 1e9 / ns
        }'
    done
    echo ""
    echo "}"
} > "$OUT_JSON"
echo "wrote $OUT_JSON"

on=$(echo "$out" | awk '$1 == "sim_hot_loop/bfs_weaver" { print $3 }')
off=$(echo "$out" | awk '$1 == "sim_hot_loop/bfs_weaver_fastforward_off" { print $3 }')

awk -v on="$on" -v off="$off" -v tol="$TOLERANCE_PCT" 'BEGIN {
    limit = off * (100 + tol) / 100
    printf "fast-forward on %d ns/iter vs off %d ns/iter (limit %.0f, tolerance %s%%)\n",
        on, off, limit, tol
    if (on > limit) {
        print "FAIL: the fast-path engine is slower than the un-fast-forwarded loop"
        exit 1
    }
    print "ok: fast-path engine within tolerance of its baseline"
}'
