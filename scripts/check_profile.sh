#!/usr/bin/env bash
# CI gate for the deterministic profile artifact: a fixed-seed profiled
# BFS run must render a profile.json that is byte-for-byte identical to
# the committed golden.
#
# The profiler records only architecturally-ordered events (memory
# fills, Weaver responses, per-warp issue slots) into fixed power-of-two
# histogram buckets with all-integer arithmetic, and the renderer sorts
# every map — so `(graph generator, algorithm, schedule, config)` fully
# determines the bytes. Any drift — in the simulator's timing, the
# profiler's bucketing, or the renderer — shows up as a diff against
# the golden artifact.
#
# On top of byte-identity, the gate exercises the swprof toolchain the
# way CI consumers do: `swprof report` must parse and render the fresh
# artifact, and `swprof diff golden fresh --tolerance 0` must find no
# changed metric (exit 0). A deliberately mismatched diff direction is
# NOT tested here — `swprof --selftest` covers the regression-detection
# side with synthetic fixtures.
#
# The fresh artifact is left at ./profile.json (gitignored) so CI can
# upload it for run-to-run differential analysis across commits.
#
# To regenerate after an intentional change (e.g. a new histogram or a
# schema extension — bump sparseweaver-profile-v1 on breaks):
#   cargo run --release --bin swsim -- run \
#     --gen powerlaw:600:6000:1.9:11 --algo bfs --schedule sw \
#     --profile-out scripts/profile_golden.json
set -euo pipefail
cd "$(dirname "$0")/.."

GOLDEN=scripts/profile_golden.json
OUT=profile.json

cargo run --release --quiet --bin swsim -- run \
    --gen powerlaw:600:6000:1.9:11 --algo bfs --schedule sw \
    --profile-out "$OUT" > /dev/null

if ! diff -u "$GOLDEN" "$OUT"; then
    echo "FAIL: profile artifact drifted from $GOLDEN" >&2
    echo "If the change is intentional, regenerate the golden (see header)." >&2
    exit 1
fi
echo "ok: fixed-seed profile.json is byte-identical to the golden artifact"

cargo run --release --quiet --bin swprof -- report "$OUT" > /dev/null
echo "ok: swprof report renders the fresh artifact"

cargo run --release --quiet --bin swprof -- diff "$GOLDEN" "$OUT" --tolerance 0
echo "ok: swprof diff finds no metric change between golden and fresh"
