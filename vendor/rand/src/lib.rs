//! Deterministic offline stand-in for the subset of `rand` 0.8 this
//! workspace uses (`StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`).
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. `StdRng` here is xoshiro256++ seeded through SplitMix64 —
//! a different stream than upstream `StdRng` (ChaCha12), but the
//! workspace only relies on *determinism for a given seed*, never on a
//! specific stream: the graph generators are consumed through
//! property-style invariants and scale-level statistics.

pub mod distributions;
pub mod rngs;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for i in 0..1000u64 {
            let x = r.gen_range(0..10usize);
            assert!(x < 10);
            let y = r.gen_range(0..=i as usize);
            assert!(y <= i as usize);
            let f = r.gen_range(0.95..1.05);
            assert!((0.95..1.05).contains(&f));
            let u = r.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| crate::RngCore::next_u64(&mut a)).collect();
        let vb: Vec<u64> = (0..8).map(|_| crate::RngCore::next_u64(&mut b)).collect();
        assert_ne!(va, vb);
    }
}
