//! Sampling distributions: `Standard` and uniform ranges.

use crate::RngCore;

/// The standard distribution (`rng.gen::<T>()`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_standard {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod uniform {
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that can be sampled once (`rng.gen_range(range)`).
    pub trait SampleRange<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Unbiased-enough draw below `span` (fixed-point multiply-shift).
    fn below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
        debug_assert!(span > 0 && span <= 1 << 64);
        ((rng.next_u64() as u128) * span) >> 64
    }

    macro_rules! int_sample_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + below(rng, span) as i128) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + below(rng, span) as i128) as $t
                }
            }
        )*};
    }
    int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "gen_range: empty range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    impl SampleRange<f32> for Range<f32> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
            assert!(self.start < self.end, "gen_range: empty range");
            let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
            self.start + unit * (self.end - self.start)
        }
    }
}
