//! Minimal, API-compatible stand-in for the subset of `rayon` the
//! SparseWeaver workspace uses (see `vendor/README.md` for why the real
//! crate cannot be fetched).
//!
//! Covered surface:
//!
//! - [`ThreadPoolBuilder::new`]`().num_threads(n).build()` →
//!   [`ThreadPool::install`]
//! - [`current_num_threads`]
//! - `(0..n).into_par_iter().map(f).collect::<Vec<_>>()` and
//!   `vec.into_par_iter().map(f).collect::<Vec<_>>()` via the
//!   [`prelude`]
//!
//! Execution model: `collect` fans the mapped items out over
//! `std::thread::scope` workers that pull indices from a shared atomic
//! counter; each worker accumulates `(index, value)` pairs and the
//! results are merged and sorted by index, so **output order always
//! matches input order** regardless of scheduling — the property the
//! campaign runner's byte-deterministic JSON depends on. Worker panics
//! propagate to the caller like rayon's. Nested parallelism inside a
//! worker runs serially (no work stealing).

use std::cell::Cell;
use std::fmt;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`] for the
    /// duration of the closure (0 = no override). Workers themselves run
    /// with an override of 1, so nested `par_iter`s serialize instead of
    /// multiplying threads.
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The number of threads a `par_iter` launched from this thread would
/// use: the installed pool's size inside [`ThreadPool::install`],
/// otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    let installed = CURRENT_THREADS.with(|c| c.get());
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type matching rayon's fallible build API (the stand-in never
/// actually fails).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with the default thread count (available parallelism).
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Sets the worker count (0 = available parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in the stand-in; the `Result` mirrors rayon's API.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads: n })
    }
}

/// A logical thread pool. The stand-in spawns scoped threads per
/// `collect` rather than keeping workers alive, but the observable
/// behavior (worker count, result order, panic propagation) matches.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool installed: `par_iter`s inside use
    /// [`ThreadPool::current_num_threads`] workers.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = CURRENT_THREADS.with(|c| c.replace(self.threads));
        let guard = RestoreThreads(prev);
        let r = f();
        drop(guard);
        r
    }

    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

struct RestoreThreads(usize);

impl Drop for RestoreThreads {
    fn drop(&mut self) {
        CURRENT_THREADS.with(|c| c.set(self.0));
    }
}

/// Re-exports users `use rayon::prelude::*` for.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParMap, ParallelIterator};
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u32> {
    type Item = u32;
    fn into_par_iter(self) -> ParIter<u32> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// A materialized parallel iterator over `T`.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Operations on parallel iterators (subset of rayon's trait, provided
/// inherently on the concrete adapters; the trait exists so
/// `use rayon::prelude::*` imports resolve).
pub trait ParallelIterator {}

impl<T> ParallelIterator for ParIter<T> {}
impl<T, F> ParallelIterator for ParMap<T, F> {}

impl<T: Send> ParIter<T> {
    /// Maps each element through `f` in parallel.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The `map` adapter.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Executes the map over the installed worker count and collects the
    /// results **in input order**.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(T) -> R + Sync,
        R: Send,
        C: From<Vec<R>>,
    {
        C::from(par_map_ordered(self.items, &self.f))
    }
}

/// Maps `items` through `f` on `current_num_threads()` scoped workers,
/// returning results in input order.
fn par_map_ordered<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let workers = current_num_threads().clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Each slot holds one input; workers claim indices from the shared
    // counter and take the input out of its slot.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    // Serialize nested parallelism inside workers.
                    let prev = CURRENT_THREADS.with(|c| c.replace(1));
                    let restore = RestoreThreads(prev);
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = work[i]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .take()
                            .expect("work item claimed twice");
                        out.push((i, f(item)));
                    }
                    drop(restore);
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(part) => part,
                Err(payload) => resume_unwind(payload),
            })
            .collect()
    });
    let mut all: Vec<(usize, R)> = parts.into_iter().flatten().collect();
    all.sort_by_key(|&(i, _)| i);
    all.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn collect_preserves_input_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<usize> = pool.install(|| (0..100usize).into_par_iter().map(|i| i * 2).collect());
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn vec_into_par_iter() {
        let v = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let lens: Vec<usize> = pool.install(|| v.into_par_iter().map(|s| s.len()).collect());
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn install_scopes_the_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 7);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn serial_fallback_without_install() {
        let out: Vec<u32> = (0..10u32).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out.len(), 10);
        assert_eq!(out[9], 10);
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let r = std::panic::catch_unwind(|| {
            let _: Vec<usize> = pool.install(|| {
                (0..8usize)
                    .into_par_iter()
                    .map(|i| if i == 5 { panic!("boom") } else { i })
                    .collect()
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn builder_default_uses_available_parallelism() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }
}
