//! Minimal offline stand-in for `serde`.
//!
//! The build environment has no network access and an empty registry
//! cache, so the real `serde` cannot be fetched. This workspace only
//! ever uses `#[derive(serde::Serialize, serde::Deserialize)]` as type
//! metadata — nothing serializes through serde at runtime (JSON output
//! is hand-rolled) — so marker traits with blanket impls plus no-op
//! derive macros are a faithful substitute. If real serde serialization
//! is ever needed, replace this vendored stub with the actual crate.

/// Marker stand-in for `serde::Serialize`; every type satisfies it.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; every sized type satisfies it.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
