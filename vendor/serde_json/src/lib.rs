//! Placeholder stand-in for `serde_json`.
//!
//! Declared as a dependency by `sparseweaver-bench` but unused in any
//! code path — all JSON in this workspace is hand-rolled (the swsim
//! `--json` line writer and the `sparseweaver-trace` exporters). This
//! empty crate exists only so dependency resolution succeeds without
//! network access.
