//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! The stand-in `serde` crate (vendor/serde) provides blanket impls that
//! already cover every type, so the derives only need to swallow the
//! `#[derive(...)]` attribute (and any `#[serde(...)]` helpers) and
//! expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
