//! Option strategies (`prop::option::weighted`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct Weighted<S> {
    probability: f64,
    inner: S,
}

/// `Some` with the given probability, `None` otherwise.
pub fn weighted<S: Strategy>(probability: f64, inner: S) -> Weighted<S> {
    assert!(
        (0.0..=1.0).contains(&probability),
        "probability out of range"
    );
    Weighted { probability, inner }
}

/// `Some` half of the time.
pub fn of<S: Strategy>(inner: S) -> Weighted<S> {
    weighted(0.5, inner)
}

impl<S: Strategy> Strategy for Weighted<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.unit_f64() < self.probability {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
