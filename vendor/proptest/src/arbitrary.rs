//! `any::<T>()` over primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct AnyStrategy<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
