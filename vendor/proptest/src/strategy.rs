//! The `Strategy` trait and core combinators.

use crate::test_runner::TestRng;

/// A generator of test-case values. Unlike real proptest there is no
/// shrinking: `generate` directly produces a value from the RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    fn prop_flat_map<S, F>(self, make: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, make }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    source: S,
    make: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.make)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len());
        self.arms[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below_u128(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below_u128(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($S:ident : $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
