//! Mini offline stand-in for `proptest` 1.x.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. This re-implements exactly the strategy DSL this
//! workspace's property tests use — `proptest!`, `prop_assert*!`,
//! `prop_assume!`, `prop_oneof!`, `any`, `Just`, ranges, tuples,
//! `prop::collection::vec`, `prop::option::weighted`,
//! `prop::sample::select`, `prop_map`/`prop_flat_map` — with a
//! deterministic per-test RNG. Cases that fail are reported with the
//! case index; there is no shrinking (a failing case's seed is fully
//! determined by the test name and case number, so reproduction is
//! deterministic anyway).

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Top-level macro: expands each `fn name(pat in strategy, ...) { .. }`
/// into a plain test function running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __ran: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __config
                    .cases
                    .saturating_mul(16)
                    .saturating_add(256);
                while __ran < __config.cases && __attempts < __max_attempts {
                    __attempts += 1;
                    let __outcome = (|| -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $(
                            let $pat = $crate::strategy::Strategy::generate(
                                &($strat),
                                &mut __rng,
                            );
                        )+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __ran += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!(
                                "proptest {} failed at case {}: {}",
                                stringify!($name),
                                __ran,
                                __msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)` / with trailing format args.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            concat!(
                "assertion failed: `left == right`: ",
                stringify!($a),
                " vs ",
                stringify!($b)
            )
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// `prop_assert_ne!(a, b)` / with trailing format args.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l != *__r,
            concat!(
                "assertion failed: `left != right`: ",
                stringify!($a),
                " vs ",
                stringify!($b)
            )
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

/// Skip the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$(::std::boxed::Box::new($arm)),+])
    };
}
