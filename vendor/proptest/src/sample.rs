//! Sampling from explicit value lists (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct Select<T> {
    items: Vec<T>,
}

/// Uniform choice from a non-empty list of values.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select from empty list");
    Select { items }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len())].clone()
    }
}
