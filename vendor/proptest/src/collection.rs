//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Half-open size window `[lo, hi)` for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi - self.size.lo;
        let n = self.size.lo + if span > 0 { rng.below(span) } else { 0 };
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}
