//! Test-runner plumbing: configuration, case outcomes, deterministic RNG.

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!` — retried, not failed.
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic RNG (xoshiro256++ seeded from the test path) so every
/// test run generates the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed from a test's module path + name (FNV-1a then SplitMix64).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Uniform draw in `[0, span)` for spans up to 2^64.
    pub fn below_u128(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0 && span <= 1 << 64);
        ((self.next_u64() as u128) * span) >> 64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
