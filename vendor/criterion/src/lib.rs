//! Minimal offline stand-in for `criterion` 0.5.
//!
//! Implements the subset of the API the workspace benches use
//! (`Criterion`, `benchmark_group`, `bench_function`, `Bencher::iter`,
//! `iter_batched`, `BatchSize`, the `criterion_group!`/`criterion_main!`
//! macros) with a simple wall-clock sampler printing ns/iter. Under
//! `cargo test` (which passes `--test` to `harness = false` bench
//! binaries) the benchmark bodies are skipped so the test suite stays
//! fast; under `cargo bench` each benchmark is timed over a short
//! fixed window. There are no statistical reports — this exists to keep
//! bench targets compiling and comparable without network access.

use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Invoked by `cargo test`: compile-check only, skip execution.
    Test,
    /// Invoked by `cargo bench`: measure and print.
    Bench,
    /// `--list`: print benchmark names.
    List,
}

/// How batched inputs are grouped (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut mode = Mode::Bench;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => mode = Mode::Test,
                "--bench" => mode = Mode::Bench,
                "--list" => mode = Mode::List,
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { mode, filter }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self.mode, self.filter.as_deref(), &id.into(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
        }
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(self.parent.mode, self.parent.filter.as_deref(), &full, f);
        self
    }

    pub fn finish(self) {}
}

#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

/// Budget per benchmark: stop after this many iterations or this much
/// wall time, whichever comes first.
const MAX_ITERS: u64 = 25;
const MAX_TIME: Duration = Duration::from_millis(60);

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        let mut n = 0u64;
        loop {
            std::hint::black_box(f());
            n += 1;
            if n >= MAX_ITERS || start.elapsed() > MAX_TIME {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iters = n;
    }

    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut total = Duration::ZERO;
        let mut n = 0u64;
        loop {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            total += t.elapsed();
            n += 1;
            if n >= MAX_ITERS || total > MAX_TIME {
                break;
            }
        }
        self.elapsed = total;
        self.iters = n;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(mode: Mode, filter: Option<&str>, id: &str, mut f: F) {
    if let Some(flt) = filter {
        if !id.contains(flt) {
            return;
        }
    }
    match mode {
        Mode::List => println!("{id}: benchmark"),
        Mode::Test => println!("bench {id} ... skipped (offline harness, test mode)"),
        Mode::Bench => {
            let mut b = Bencher::default();
            f(&mut b);
            if b.iters > 0 {
                let per = b.elapsed.as_nanos() / b.iters as u128;
                println!("{id:<55} time: {per:>12} ns/iter ({} iters)", b.iters);
            }
        }
    }
}

/// Re-export so `criterion::black_box` users resolve.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
