//! # SparseWeaver
//!
//! A full-system reproduction of *"SparseWeaver: Converting Sparse Operations
//! as Dense Operations on GPUs for Graph Workloads"* (HPCA 2025).
//!
//! SparseWeaver is a hardware/software collaborative graph-processing
//! framework: a lightweight GPU functional unit (**Weaver**) converts sparse
//! edge-gather operations into dense, SIMD-friendly work distributions,
//! eliminating the warp-level workload imbalance that sparse, skewed
//! real-world graphs inflict on lockstep GPU execution.
//!
//! This crate is a facade that re-exports the whole workspace:
//!
//! - [`graph`] — CSR graphs, generators, datasets, statistics.
//! - [`isa`] — the kernel IR, the Weaver ISA extension, assembler/disassembler.
//! - [`mem`] — caches, DRAM model, memory hierarchy.
//! - [`weaver`] — the Weaver functional unit (ST/DT tables, the S0–S8 FSM),
//!   the EGHW hardware baseline, and the FPGA area model.
//! - [`sim`] — the cycle-level SIMT GPU simulator.
//! - [`trace`] — structured simulation tracing & metrics: typed events,
//!   counter sampling, Chrome-trace (Perfetto) and metrics-JSON export.
//! - [`fault`] — deterministic fault injection: seeded bit flips and
//!   Weaver-protocol faults, campaign classification
//!   (see `docs/robustness.md`).
//! - [`lint`] — the kernel-IR static verifier: CFG/dataflow analysis with
//!   divergence, barrier-deadlock, and Weaver-protocol checks
//!   (see `docs/lint-rules.md`).
//! - [`shutdown`] — cooperative shutdown plumbing: SIGINT/SIGTERM handling
//!   and the wall-clock watchdog behind `--max-wall-secs`
//!   (see `docs/robustness.md`).
//! - [`core`] — the graph framework: algorithms, scheduling schemes, the
//!   kernel compiler, host runtime, analytic models, auto-tuner.
//!
//! ## Quickstart
//!
//! ```rust
//! use sparseweaver::core::prelude::*;
//!
//! // A small skewed graph and a PageRank run under the SparseWeaver schedule.
//! let graph = sparseweaver::graph::generators::powerlaw(200, 2_000, 2.2, 7);
//! let mut session = Session::new(GpuConfig::vortex_default());
//! let report = session.run(&graph, &PageRank::new(5), Schedule::SparseWeaver)?;
//! println!("cycles = {}", report.cycles);
//! # Ok::<(), sparseweaver::core::FrameworkError>(())
//! ```
#![forbid(unsafe_code)]

pub use sparseweaver_core as core;
pub use sparseweaver_fault as fault;
pub use sparseweaver_graph as graph;
pub use sparseweaver_isa as isa;
pub use sparseweaver_lint as lint;
pub use sparseweaver_mem as mem;
pub use sparseweaver_shutdown as shutdown;
pub use sparseweaver_sim as sim;
pub use sparseweaver_trace as trace;
pub use sparseweaver_weaver as weaver;

/// The workspace version, shared by every CLI entry point (`swsim
/// --version`, `swlint --version`).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
