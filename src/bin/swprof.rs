//! `swprof` — read, summarize, and diff SparseWeaver profile artifacts.
//!
//! Consumes the deterministic `profile.json` documents written by
//! `swsim run --profile-out` (schema `sparseweaver-profile-v1`) and turns
//! them into the paper's Fig. 4-style breakdowns, or into a run-to-run
//! differential report with regression gating for CI.
//!
//! ```text
//! swprof report profile.json            # Fig. 4-style cycle breakdown
//! swprof report profile.json --json     # flat metric map, one object
//! swprof diff base.json cand.json       # per-metric deltas, strict gate
//! swprof diff base.json cand.json --tolerance 5
//! swprof --selftest                     # verify the diff engine itself
//! swprof --version
//! ```
//!
//! Exit status: 0 success (and, for `diff`, no regression beyond the
//! tolerance); 1 on read/parse failures, regressions, or a broken
//! selftest; 2 on usage errors. `swlint --selftest` follows the same
//! convention: healthy exits 0, a fixture miss exits 1.

use std::collections::HashMap;
use std::process::exit;

use sparseweaver::core::profile::{
    comparability_issues, diff, flat_metrics, lower_is_better, regressions, MetricDelta,
    PROFILE_SCHEMA,
};
use sparseweaver::trace::json::{self, escape, Value};

fn usage() -> ! {
    eprintln!(
        "swprof — SparseWeaver profile artifact reader

USAGE:
  swprof report FILE [--json]
  swprof diff BASELINE CANDIDATE [--tolerance PCT] [--all] [--json]
  swprof --selftest [--json]
  swprof --version

  FILE is a profile.json written by `swsim run --profile-out` (schema
  {PROFILE_SCHEMA}); `-` reads from stdin.

REPORT:
  Renders the artifact as a Fig. 4-style top-down cycle breakdown: issue
  slots split into issued / stall categories / idle, per-kernel phase
  tables, latency histogram quantiles, and load-imbalance summaries.
  --json prints the flat `metric: value` map instead.

DIFF:
  Compares two artifacts metric by metric. Lower-is-better metrics
  (cycles, stalls, idle, latency quantiles, imbalance ratios) whose
  candidate value exceeds the baseline by more than the tolerance are
  regressions and make the exit code 1.
  --tolerance PCT  allowed growth before a metric regresses (default 0:
                   any growth fails — right for byte-deterministic reruns)
  --all            print unchanged metrics too
  --json           one JSON object per metric delta, one per line

SELFTEST:
  Exercises parse / flatten / diff / regression gating on built-in
  fixtures. Exits 0 when the engine is healthy, 1 when broken — the
  same convention as swlint --selftest."
    );
    exit(2)
}

fn parse_flags(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut pos = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let next_is_value = args
                .get(i + 1)
                .map(|n| !n.starts_with("--"))
                .unwrap_or(false);
            // Value-less flags: everything except --tolerance.
            if next_is_value && name == "tolerance" {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_string(), String::new());
                i += 1;
            }
        } else {
            pos.push(args[i].clone());
            i += 1;
        }
    }
    for k in flags.keys() {
        if !["json", "all", "tolerance", "selftest"].contains(&k.as_str()) {
            eprintln!("unknown flag `--{k}`");
            usage()
        }
    }
    (pos, flags)
}

fn load_profile(path: &str) -> Value {
    let text = if path == "-" {
        use std::io::Read as _;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .unwrap_or_else(|e| {
                eprintln!("cannot read stdin: {e}");
                exit(1)
            });
        buf
    } else {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1)
        })
    };
    let doc = json::parse(&text).unwrap_or_else(|e| {
        eprintln!("{path}: not valid JSON: {e}");
        exit(1)
    });
    match doc.get("schema").and_then(Value::as_str) {
        Some(s) if s == PROFILE_SCHEMA => doc,
        Some(s) => {
            eprintln!("{path}: schema `{s}`, expected `{PROFILE_SCHEMA}`");
            exit(1)
        }
        None => {
            eprintln!("{path}: missing `schema` field — not a profile artifact");
            exit(1)
        }
    }
}

/// Formats a parsed JSON number: integers without a decimal point,
/// everything else with three places.
fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

fn num_at(doc: &Value, path: &[&str]) -> f64 {
    let mut v = doc;
    for p in path {
        match v.get(p) {
            Some(child) => v = child,
            None => return 0.0,
        }
    }
    v.as_num().unwrap_or(0.0)
}

fn str_at<'a>(doc: &'a Value, path: &[&str]) -> &'a str {
    let mut v = doc;
    for p in path {
        match v.get(p) {
            Some(child) => v = child,
            None => return "?",
        }
    }
    v.as_str().unwrap_or("?")
}

fn breakdown_line(label: &str, slots: f64, total: f64) {
    let pct = if total > 0.0 {
        slots / total * 100.0
    } else {
        0.0
    };
    let bar = "#".repeat((pct / 2.0).round() as usize);
    println!("  {label:<18} {:>14}  {pct:>5.1}%  {bar}", fmt_num(slots));
}

fn cmd_report(path: &str, json_mode: bool) -> i32 {
    let doc = load_profile(path);
    if json_mode {
        let metrics = flat_metrics(&doc);
        let body: Vec<String> = metrics
            .iter()
            .map(|(name, v)| format!("\"{}\":{}", escape(name), fmt_num(*v)))
            .collect();
        println!("{{{}}}", body.join(","));
        return 0;
    }
    println!(
        "profile: {} on {} | graph {} vertices, {} edges",
        str_at(&doc, &["schedule"]),
        str_at(&doc, &["algorithm"]),
        fmt_num(num_at(&doc, &["graph", "vertices"])),
        fmt_num(num_at(&doc, &["graph", "edges"])),
    );
    println!(
        "config: {} cores x {} warps (fingerprint {}, graph {})",
        fmt_num(num_at(&doc, &["config", "cores"])),
        fmt_num(num_at(&doc, &["config", "warps_per_core"])),
        str_at(&doc, &["config", "fingerprint"]),
        str_at(&doc, &["graph", "fingerprint"]),
    );
    let slots = num_at(&doc, &["totals", "issue_slots"]);
    println!(
        "\nissue-slot breakdown ({} cycles x cores = {} slots):",
        fmt_num(num_at(&doc, &["totals", "cycles"])),
        fmt_num(slots)
    );
    breakdown_line("issued", num_at(&doc, &["totals", "issued"]), slots);
    for cat in ["memory", "shared", "exec_dep", "weaver"] {
        breakdown_line(
            &format!("stall: {cat}"),
            num_at(&doc, &["totals", "stalls", cat]),
            slots,
        );
    }
    breakdown_line("idle", num_at(&doc, &["totals", "idle"]), slots);
    println!(
        "  other units: l1_queue {} (per access), barrier {} (warp-cycles)",
        fmt_num(num_at(&doc, &["totals", "other_units", "l1_queue"])),
        fmt_num(num_at(&doc, &["totals", "other_units", "barrier"])),
    );
    if let Some(kernels) = doc.get("per_kernel").and_then(Value::as_arr) {
        println!("\nper-kernel:");
        println!(
            "  {:<24} {:>8} {:>12} {:>12}  top phase",
            "kernel", "launches", "cycles", "instrs"
        );
        for k in kernels {
            let name = k.get("name").and_then(Value::as_str).unwrap_or("?");
            let top_phase = match k.get("phases") {
                Some(Value::Obj(phases)) => {
                    phases
                        .iter()
                        .filter_map(|(label, v)| v.as_num().map(|n| (label.as_str(), n)))
                        .fold(
                            ("-", 0.0),
                            |best, cur| if cur.1 > best.1 { cur } else { best },
                        )
                        .0
                }
                _ => "-",
            };
            println!(
                "  {:<24} {:>8} {:>12} {:>12}  {}",
                name,
                fmt_num(num_at(k, &["launches"])),
                fmt_num(num_at(k, &["cycles"])),
                fmt_num(num_at(k, &["instructions"])),
                top_phase
            );
        }
    }
    if let Some(Value::Obj(hists)) = doc.get("histograms") {
        println!("\nlatency histograms (cycles):");
        println!(
            "  {:<18} {:>10} {:>8} {:>8} {:>8} {:>8}",
            "histogram", "count", "p50", "p90", "p99", "max"
        );
        for (name, h) in hists {
            println!(
                "  {:<18} {:>10} {:>8} {:>8} {:>8} {:>8}",
                name,
                fmt_num(num_at(h, &["count"])),
                fmt_num(num_at(h, &["p50"])),
                fmt_num(num_at(h, &["p90"])),
                fmt_num(num_at(h, &["p99"])),
                fmt_num(num_at(h, &["max"])),
            );
        }
    }
    if let Some(Value::Obj(imb)) = doc.get("imbalance") {
        println!("\nload imbalance (issued instructions; max/mean, permille):");
        for (name, s) in imb {
            println!(
                "  {:<12} {:>4} entities  min {:>10}  max {:>10}  mean {:>10}  ratio {}",
                name,
                fmt_num(num_at(s, &["entities"])),
                fmt_num(num_at(s, &["min"])),
                fmt_num(num_at(s, &["max"])),
                fmt_num(num_at(s, &["mean"])),
                fmt_num(num_at(s, &["imbalance_permille"])),
            );
        }
    }
    0
}

fn delta_json(d: &MetricDelta) -> String {
    let opt = |v: Option<f64>| v.map(fmt_num).unwrap_or_else(|| "null".into());
    format!(
        "{{\"metric\":\"{}\",\"baseline\":{},\"candidate\":{},\"delta\":{},\"lower_is_better\":{}}}",
        escape(&d.name),
        opt(d.a),
        opt(d.b),
        opt(d.delta()),
        lower_is_better(&d.name),
    )
}

fn cmd_diff(path_a: &str, path_b: &str, flags: &HashMap<String, String>) -> i32 {
    let tolerance: f64 = match flags.get("tolerance") {
        None => 0.0,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--tolerance expects a number, got `{v}`");
            exit(2)
        }),
    };
    let json_mode = flags.contains_key("json");
    let show_all = flags.contains_key("all");
    let a = load_profile(path_a);
    let b = load_profile(path_b);
    for issue in comparability_issues(&a, &b) {
        eprintln!("warning: {issue}");
    }
    let deltas = diff(&a, &b);
    let regs = regressions(&deltas, tolerance);
    if json_mode {
        for d in &deltas {
            if show_all || d.a != d.b {
                println!("{}", delta_json(d));
            }
        }
    } else {
        println!(
            "{:<44} {:>14} {:>14} {:>12} {:>9}",
            "metric", "baseline", "candidate", "delta", "change"
        );
        let mut shown = 0usize;
        for d in &deltas {
            if !show_all && d.a == d.b {
                continue;
            }
            shown += 1;
            let is_reg = regs.iter().any(|r| r.name == d.name);
            let marker = if is_reg {
                "  REGRESSED"
            } else if lower_is_better(&d.name) && d.delta().is_some_and(|x| x < 0.0) {
                "  improved"
            } else {
                ""
            };
            let opt = |v: Option<f64>| v.map(fmt_num).unwrap_or_else(|| "-".into());
            let pct = d
                .pct()
                .map(|p| format!("{p:>+8.2}%"))
                .unwrap_or_else(|| "        -".into());
            println!(
                "{:<44} {:>14} {:>14} {:>12} {pct}{marker}",
                d.name,
                opt(d.a),
                opt(d.b),
                opt(d.delta()),
            );
        }
        if shown == 0 {
            println!("(no metric changed)");
        }
        println!(
            "\n{} metric(s) compared, {} changed, {} regression(s) at {tolerance}% tolerance",
            deltas.len(),
            deltas.iter().filter(|d| d.a != d.b).count(),
            regs.len()
        );
    }
    if regs.is_empty() {
        0
    } else {
        1
    }
}

/// A minimal but schema-complete artifact for the selftest fixtures.
fn fixture(cycles: u64, mem_stall: u64, p99: u64, graph_fp: &str) -> String {
    format!(
        r#"{{"schema":"{PROFILE_SCHEMA}","schedule":"S_weaver","algorithm":"bfs",
  "fell_back_from":null,
  "config":{{"cores":2,"warps_per_core":4,"threads_per_warp":4,"fingerprint":"00aa"}},
  "graph":{{"vertices":10,"edges":20,"fingerprint":"{graph_fp}"}},
  "totals":{{"cycles":{cycles},"issue_slots":{slots},"issued":40,
    "thread_instructions":160,
    "stalls":{{"memory":{mem_stall},"shared":1,"exec_dep":2,"weaver":3,"total":{stall_total}}},
    "idle":{idle},"other_units":{{"l1_queue":5,"barrier":6}}}},
  "per_kernel":[{{"name":"gather","launches":1,"cycles":{cycles},"instructions":40,
    "phases":{{"Init":1,"Gather & Sum":{cycles}}},
    "stalls":{{"memory":{mem_stall},"shared":1,"exec_dep":2,"weaver":3,"total":{stall_total}}},
    "other_units":{{"l1_queue":5,"barrier":6}}}}],
  "histograms":{{"mem_l1":{{"count":30,"sum":90,"min":1,"max":{p99},
    "p50":3,"p90":{p99},"p99":{p99},"buckets":[[3,25],[{p99},5]]}}}},
  "imbalance":{{"core_issue":{{"entities":2,"min":18,"max":22,"mean":20,
    "imbalance_permille":1100}}}}}}"#,
        slots = cycles * 2,
        stall_total = mem_stall + 1 + 2 + 3,
        idle = (cycles * 2).saturating_sub(40 + mem_stall + 6),
    )
}

fn cmd_selftest(json_mode: bool) -> i32 {
    let mut ok = true;
    let mut check = |label: &str, pass: bool| {
        ok &= pass;
        if json_mode {
            println!("{{\"check\":\"{}\",\"ok\":{pass}}}", escape(label));
        } else if pass {
            println!("ok    {label}");
        } else {
            println!("FAIL  {label}");
        }
    };

    let base = json::parse(&fixture(100, 10, 8, "00bb")).expect("fixture parses");
    check(
        "fixture parses with the profile schema",
        base.get("schema").and_then(Value::as_str) == Some(PROFILE_SCHEMA),
    );

    let m1 = flat_metrics(&base);
    let m2 = flat_metrics(&base);
    check("flat_metrics is deterministic", m1 == m2);
    check(
        "flat_metrics is sorted and covers nested paths",
        m1.windows(2).all(|w| w[0].0 < w[1].0)
            && m1.iter().any(|(n, _)| n == "totals.stalls.memory")
            && m1.iter().any(|(n, _)| n == "per_kernel.gather.cycles"),
    );

    let self_deltas = diff(&base, &base);
    check(
        "self-diff has no changes and no regressions",
        self_deltas.iter().all(|d| d.a == d.b) && regressions(&self_deltas, 0.0).is_empty(),
    );

    // +20% cycles and +8x memory stall: both lower-is-better.
    let worse = json::parse(&fixture(120, 80, 8, "00bb")).expect("fixture parses");
    let deltas = diff(&base, &worse);
    let regs5 = regressions(&deltas, 5.0);
    check(
        "cycle/stall growth regresses at 5% tolerance",
        regs5.iter().any(|d| d.name == "totals.cycles")
            && regs5.iter().any(|d| d.name == "totals.stalls.memory"),
    );
    check(
        "a generous tolerance forgives the cycle growth",
        !regressions(&deltas, 25.0)
            .iter()
            .any(|d| d.name == "totals.cycles"),
    );

    // p99 latency shrink + count growth: improvement and neutral.
    let faster = json::parse(&fixture(100, 10, 3, "00bb")).expect("fixture parses");
    let deltas = diff(&base, &faster);
    check(
        "latency quantile shrink is not a regression",
        regressions(&deltas, 0.0).is_empty(),
    );
    check(
        "neutral metrics never regress",
        !lower_is_better("totals.issued") && !lower_is_better("histograms.mem_l1.count"),
    );

    let other_graph = json::parse(&fixture(100, 10, 8, "00cc")).expect("fixture parses");
    check(
        "fingerprint mismatch is reported as incomparable",
        comparability_issues(&base, &other_graph)
            .iter()
            .any(|i| i.contains("graph fingerprint"))
            && comparability_issues(&base, &base).is_empty(),
    );

    if !json_mode {
        println!(
            "selftest: diff engine {}",
            if ok { "healthy" } else { "BROKEN" }
        );
    }
    // Well-formed fixtures: healthy exits 0 (cf. swlint --selftest).
    if ok {
        0
    } else {
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--version" || a == "-V") {
        println!("swprof {}", sparseweaver::VERSION);
        return;
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let (pos, flags) = parse_flags(&args);
    if flags.contains_key("selftest") {
        if !pos.is_empty() {
            eprintln!("--selftest takes no subcommand");
            usage()
        }
        exit(cmd_selftest(flags.contains_key("json")));
    }
    let code = match pos.first().map(String::as_str) {
        Some("report") => match pos.get(1) {
            Some(path) if pos.len() == 2 => cmd_report(path, flags.contains_key("json")),
            _ => {
                eprintln!("`swprof report` takes exactly one FILE");
                usage()
            }
        },
        Some("diff") => match (pos.get(1), pos.get(2)) {
            (Some(a), Some(b)) if pos.len() == 3 => cmd_diff(a, b, &flags),
            _ => {
                eprintln!("`swprof diff` takes exactly BASELINE and CANDIDATE");
                usage()
            }
        },
        _ => usage(),
    };
    exit(code)
}
