//! `swreplay` — replay captured memory traces against arbitrary cache
//! geometries.
//!
//! Consumes the binary `swmtrace-v1` captures written by
//! `swsim run --mem-trace-out` and re-runs *only* the memory hierarchy
//! against them — no cores, no decode, no Weaver — which makes a
//! cache-geometry sweep orders of magnitude faster than re-simulating.
//!
//! ```text
//! swreplay verify --trace t.swmtrace          # replay == live, bit for bit?
//! swreplay info --trace t.swmtrace            # header + record counts
//! swreplay sweep --trace t.swmtrace \
//!     --l1-sizes 4096,8192,16384 --ways 2,4 --jobs 8 --out replay.json
//! swreplay --version
//! ```
//!
//! Exit status: 0 success; 1 the capture-config replay did not reproduce
//! the live stats (a simulator bug — the hierarchy is meant to be a pure
//! function of its call sequence); 2 usage error; 3 trace file I/O
//! error; 4 corrupt or truncated trace (the error names the byte
//! offset).

use std::collections::HashMap;
use std::path::Path;
use std::process::exit;

use sparseweaver::core::checkpoint::write_atomic;
use sparseweaver::core::replay::{render, sweep, trace_fingerprint, SweepSpec, REPLAY_SCHEMA};
use sparseweaver::mem::mtrace::parse;
use sparseweaver::mem::replay::verify;
use sparseweaver::mem::{LevelStats, MemTrace};

fn usage() -> ! {
    eprintln!(
        "swreplay — SparseWeaver memory-trace replay and cache-sweep driver

USAGE:
  swreplay verify --trace FILE [--json]
  swreplay sweep  --trace FILE [--l1-sizes CSV] [--ways CSV]
                  [--jobs N] [--out FILE]
  swreplay info   --trace FILE [--json]
  swreplay --version

  FILE is an swmtrace-v1 capture written by `swsim run --mem-trace-out`;
  `-` reads the trace from stdin.

VERIFY:
  Replays the trace under its own capture configuration and compares the
  resulting LevelStats against the live run's stats recorded in the
  trace footer. They must match bit for bit; a mismatch exits 1.

SWEEP:
  Replays the trace under every L1 geometry in the
  `--l1-sizes` x `--ways` cross product (the capture configuration with
  its L1 replaced) and writes a deterministic `{REPLAY_SCHEMA}` JSON
  artifact: per-config LevelStats and DRAM counters, FNV config
  fingerprints, and the capture self-check. Output bytes are identical
  for any `--jobs` value.
  --l1-sizes CSV  L1 sizes in bytes
                  (default 4096,8192,16384,32768,65536,131072,262144,524288)
  --ways CSV      L1 associativities (default 2,4)
  --jobs N        worker threads (default 1)
  --out FILE      artifact path (default `-`, stdout)

INFO:
  Prints the capture header (hierarchy configuration), record counts,
  and the live run's footer stats without replaying anything.

EXIT CODES:
  0 success | 1 capture-config replay mismatch | 2 usage error |
  3 trace I/O error | 4 corrupt or truncated trace"
    );
    exit(2)
}

/// Flags each subcommand accepts; anything else is a usage error.
fn check_flags(cmd: &str, flags: &HashMap<String, String>) {
    let allowed: &[&str] = match cmd {
        "verify" => &["trace", "json"],
        "sweep" => &["trace", "l1-sizes", "ways", "jobs", "out"],
        "info" => &["trace", "json"],
        _ => return,
    };
    for k in flags.keys() {
        if !allowed.contains(&k.as_str()) {
            eprintln!("unknown flag `--{k}` for `swreplay {cmd}`");
            exit(2)
        }
    }
}

fn parse_flags(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut pos = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            let next_is_value = args
                .get(i + 1)
                .map(|n| !n.starts_with("--"))
                .unwrap_or(false);
            if next_is_value {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_string(), String::new());
                i += 1;
            }
        } else {
            pos.push(a.clone());
            i += 1;
        }
    }
    (pos, flags)
}

/// Reads the trace file named by `--trace` (or stdin for `-`) and
/// parses it. I/O failures exit 3; parse failures exit 4 with the
/// offending byte offset.
fn load_trace(flags: &HashMap<String, String>) -> (Vec<u8>, MemTrace) {
    let path = match flags.get("trace") {
        Some(p) if !p.is_empty() => p.clone(),
        _ => {
            eprintln!("--trace FILE is required (`-` for stdin)");
            exit(2)
        }
    };
    let bytes = if path == "-" {
        use std::io::Read;
        let mut buf = Vec::new();
        match std::io::stdin().read_to_end(&mut buf) {
            Ok(_) => buf,
            Err(e) => {
                eprintln!("cannot read memory trace from stdin: {e}");
                exit(3)
            }
        }
    } else {
        match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read memory trace {path}: {e}");
                exit(3)
            }
        }
    };
    let trace = match parse(&bytes) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            exit(4)
        }
    };
    (bytes, trace)
}

fn csv_u64(flags: &HashMap<String, String>, name: &str, default: &[u64]) -> Vec<u64> {
    match flags.get(name) {
        None => default.to_vec(),
        Some(v) => v
            .split(',')
            .map(|s| {
                s.trim().parse().unwrap_or_else(|_| {
                    eprintln!("--{name}: `{s}` is not an unsigned integer");
                    exit(2)
                })
            })
            .collect(),
    }
}

fn csv_u32(flags: &HashMap<String, String>, name: &str, default: &[u32]) -> Vec<u32> {
    csv_u64(
        flags,
        name,
        &default.iter().map(|&w| w as u64).collect::<Vec<_>>(),
    )
    .into_iter()
    .map(|w| {
        u32::try_from(w).unwrap_or_else(|_| {
            eprintln!("--{name}: `{w}` does not fit in 32 bits");
            exit(2)
        })
    })
    .collect()
}

fn stats_line(prefix: &str, s: &LevelStats) {
    println!(
        "{prefix}L1 {}/{} hits | L2 {}/{} hits{} | DRAM {} accesses",
        s.l1.hits,
        s.l1.accesses,
        s.l2.hits,
        s.l2.accesses,
        match &s.l3 {
            Some(l3) => format!(" | L3 {}/{} hits", l3.hits, l3.accesses),
            None => String::new(),
        },
        s.dram_accesses
    );
}

fn stats_json(s: &LevelStats) -> String {
    let l3 = match &s.l3 {
        Some(l3) => format!(
            "{{\"accesses\":{},\"hits\":{},\"misses\":{},\"writebacks\":{}}}",
            l3.accesses, l3.hits, l3.misses, l3.writebacks
        ),
        None => "null".into(),
    };
    format!(
        "{{\"l1\":{{\"accesses\":{},\"hits\":{},\"misses\":{},\"writebacks\":{}}},\
         \"l2\":{{\"accesses\":{},\"hits\":{},\"misses\":{},\"writebacks\":{}}},\
         \"l3\":{l3},\"dram_accesses\":{}}}",
        s.l1.accesses,
        s.l1.hits,
        s.l1.misses,
        s.l1.writebacks,
        s.l2.accesses,
        s.l2.hits,
        s.l2.misses,
        s.l2.writebacks,
        s.dram_accesses
    )
}

fn cmd_verify(flags: HashMap<String, String>) {
    let (_, trace) = load_trace(&flags);
    let outcome = match verify(&trace) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            exit(4)
        }
    };
    let json = flags.contains_key("json");
    if json {
        println!(
            "{{\"verified\":{},\"live\":{},\"replayed\":{}}}",
            outcome.matches(),
            stats_json(&outcome.live),
            stats_json(&outcome.replayed)
        );
    } else if outcome.matches() {
        println!("verified: replay reproduces the live run bit for bit");
        stats_line("  ", &outcome.live);
    } else {
        println!("MISMATCH: replay diverged from the live run");
        stats_line("  live:     ", &outcome.live);
        stats_line("  replayed: ", &outcome.replayed);
    }
    if !outcome.matches() {
        exit(1)
    }
}

fn cmd_info(flags: HashMap<String, String>) {
    let (bytes, trace) = load_trace(&flags);
    let (kernels, accesses, unqueued, atomics, barriers) = trace.counts();
    let cfg = &trace.config;
    if flags.contains_key("json") {
        println!(
            "{{\"fingerprint\":\"{:016x}\",\"bytes\":{},\"records\":{},\
             \"kernels\":{kernels},\"accesses\":{accesses},\"unqueued\":{unqueued},\
             \"atomics\":{atomics},\"barriers\":{barriers},\
             \"cores\":{},\"l1_bytes\":{},\"l1_ways\":{},\"l2_bytes\":{},\"l2_ways\":{},\
             \"live\":{}}}",
            trace_fingerprint(&bytes),
            bytes.len(),
            trace.records.len(),
            cfg.num_cores,
            cfg.l1.size_bytes,
            cfg.l1.ways,
            cfg.l2.size_bytes,
            cfg.l2.ways,
            stats_json(&trace.live_stats)
        );
        return;
    }
    println!(
        "swmtrace-v1 capture: {} records in {} bytes (fingerprint {:016x})",
        trace.records.len(),
        bytes.len(),
        trace_fingerprint(&bytes)
    );
    println!(
        "  captured on: {} cores | L1 {}B x{} | L2 {}B x{}{}",
        cfg.num_cores,
        cfg.l1.size_bytes,
        cfg.l1.ways,
        cfg.l2.size_bytes,
        cfg.l2.ways,
        match &cfg.l3 {
            Some(l3) => format!(" | L3 {}B x{}", l3.size_bytes, l3.ways),
            None => String::new(),
        }
    );
    println!(
        "  records: {kernels} kernel launches, {accesses} accesses \
         ({unqueued} unqueued), {atomics} atomics, {barriers} barriers"
    );
    stats_line("  live: ", &trace.live_stats);
}

fn cmd_sweep(flags: HashMap<String, String>) {
    let (bytes, trace) = load_trace(&flags);
    let spec = SweepSpec {
        l1_sizes: csv_u64(
            &flags,
            "l1-sizes",
            &[4096, 8192, 16384, 32768, 65536, 131072, 262144, 524288],
        ),
        ways: csv_u32(&flags, "ways", &[2, 4]),
        jobs: match flags.get("jobs") {
            None => 1,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("--jobs: `{v}` is not a positive integer");
                exit(2)
            }),
        },
    };
    if spec.jobs == 0 {
        eprintln!("--jobs must be at least 1");
        exit(2)
    }
    let result = match sweep(&trace, trace_fingerprint(&bytes), &spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            exit(2)
        }
    };
    let body = render(&result, &trace);
    let out = flags.get("out").cloned().unwrap_or_else(|| "-".into());
    if out == "-" {
        print!("{body}");
    } else {
        if let Err(e) = write_atomic(Path::new(&out), body.as_bytes()) {
            eprintln!("cannot write replay artifact to {out}: {e}");
            exit(3)
        }
        eprintln!(
            "replay artifact written to {out} ({} configs, verified: {})",
            result.entries.len(),
            result.verified()
        );
    }
    // The swept numbers are only trustworthy if the capture-config
    // replay reproduced the live run.
    if !result.verified() {
        eprintln!("MISMATCH: capture-config replay diverged from the live run");
        exit(1)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--version" || a == "-V") {
        println!("swreplay {}", sparseweaver::VERSION);
        return;
    }
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage()
    }
    let (pos, flags) = parse_flags(&args);
    let cmd = pos.first().map(String::as_str).unwrap_or("");
    if pos.len() != 1 {
        eprintln!("swreplay takes one subcommand (got {:?})", pos);
        exit(2)
    }
    check_flags(cmd, &flags);
    match cmd {
        "verify" => cmd_verify(flags),
        "sweep" => cmd_sweep(flags),
        "info" => cmd_info(flags),
        other => {
            eprintln!("unknown subcommand `{other}`");
            usage()
        }
    }
}
