//! `swsim` — run graph algorithms on the simulated SparseWeaver GPU from
//! the command line.
//!
//! ```text
//! swsim run   --dataset D_hw --algo pr --schedule sw [--iters 5] [--json]
//! swsim run   --graph edges.txt --algo bfs --schedule svm --source 0
//! swsim run   --gen powerlaw:2000:30000:1.9:42 --algo sssp --schedule sw
//! swsim gen   --dataset D_g500 -o g500.el
//! swsim disasm --algo pr --schedule sw
//! swsim datasets
//! ```

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::exit;

use sparseweaver::core::algorithms::{Algorithm, Bfs, ConnectedComponents, PageRank, Spmv, Sssp};
use sparseweaver::core::checkpoint::write_atomic;
use sparseweaver::core::runtime::CheckpointCtl;
use sparseweaver::core::{Checkpoint, FrameworkError, Schedule, Session};
use sparseweaver::fault::FaultSpec;
use sparseweaver::graph::{dataset, generators, io, Csr, DatasetId};
use sparseweaver::lint::LintLevel;
use sparseweaver::sim::GpuConfig;
use sparseweaver::trace::{export, CategoryMask, TraceConfig};

fn usage() -> ! {
    eprintln!(
        "swsim — SparseWeaver GPU simulator CLI

USAGE:
  swsim run    (--graph FILE | --dataset ID | --gen SPEC) --algo ALGO --schedule S
               [--iters N] [--source V] [--config vortex|eval|small|8core|regfile]
               [--json] [--all-schedules]
               [--trace FILE [--trace-level warp|mem|weaver|all]] [--metrics-out FILE]
               [--sample-every N] [--trace-out FILE.jsonl] [--profile-out FILE]
               [--mem-trace-out FILE] [--lint off|warn|deny] [--analyze]
               [--regalloc on|off] [--inject SPEC [--seed N]] [--hang-report FILE]
               [--checkpoint-out FILE [--checkpoint-every N]] [--max-wall-secs N]
               [--stop-after-launches N]
  swsim resume CKPT [--checkpoint-out FILE] [--checkpoint-every N]
               [--max-wall-secs N] [--stop-after-launches N] [--json]
  swsim gen    (--dataset ID | --gen SPEC) -o FILE
  swsim disasm --algo ALGO --schedule S [--config ...]
  swsim datasets
  swsim --version

  ALGO:  pr | bfs | sssp | cc | spmv   (sssp accepts --worklist)
  S:     svm | em | wm | cm | sw | eghw
  SPEC:  powerlaw:V:E:ALPHA:SEED | uniform:V:E:SEED | rmat:SCALE:E:SEED | grid:W:H:KEEP:SEED
  ID:    one of `swsim datasets` (e.g. D_hw)

TRACING:
  --trace FILE        write a Chrome-trace JSON (load in Perfetto / chrome://tracing)
  --trace-level L     event categories: warp | mem | weaver | all (default all)
  --sample-every N    counter-sample interval in cycles (default 1000)
  --metrics-out FILE  write a metrics-JSON document (counter time series)
  --trace-out FILE    stream events as JSONL (one object per line, nothing evicted)

PROFILING:
  --profile-out FILE  write a deterministic profile.json artifact: top-down
                      cycle accounting, latency histograms (per memory
                      level, Weaver round-trips, gather iterations) with
                      p50/p90/p99, and core/warp load-imbalance summaries;
                      read it with the `swprof` tool

MEMORY TRACE:
  --mem-trace-out FILE  capture a compact binary per-warp memory-access
                      trace (swmtrace-v1: coalesced line accesses with
                      core/warp/cycle/rw/level, kernel launches, barriers)
                      for offline cache-geometry sweeps with `swreplay`

  Artifact flags (--metrics-out, --trace-out, --hang-report, --profile-out,
  --mem-trace-out) accept `-` as the path to write to stdout instead of a file; the run
  summary then moves to stderr so stdout is exactly the artifact.

LINTING:
  --lint LEVEL        static kernel verifier: off | warn | deny (default deny);
                      `deny` rejects kernels with error findings before launch
                      (see also the standalone `swlint` tool)
  --analyze           also run the abstract-interpretation analyzer (SW-L5xx:
                      value ranges, static OOB/race proofs, coalescing
                      advisories) over each schedule's kernels before running,
                      printing its findings; a *proved* out-of-bounds access
                      (SW-L501) rejects the kernel under --lint deny

REGISTER ALLOCATION:
  --regalloc on|off   liveness-based register allocation before launch
                      (default on); `off` runs template output verbatim

FAULT INJECTION:
  --inject SPEC       deterministic fault injection, e.g.
                      `reg=0.001,mem=0.0005,weaver-drop=0.01`; sites:
                      reg | mem | fetch | weaver-drop | weaver-delay
                      (see docs/robustness.md and the `swfault` tool)
  --seed N            injector seed (default 0); same seed, same faults
  --hang-report FILE  on deadlock / cycle limit / Weaver timeout, write a
                      structured hang report (per-warp PC, thread masks,
                      Weaver FSM state, queue occupancy) as JSON
  --fallback on|off   graceful degradation to S_wm after Weaver-timeout
                      retries exhaust (default on); `off` surfaces the
                      timeout as a hang instead

CHECKPOINT / RESUME:
  --checkpoint-out FILE  write a binary `swckpt-v1` checkpoint of the
                      complete simulator state (atomically: temp file +
                      rename) at launch boundaries; `swsim resume FILE`
                      continues the run bit-identically. Incompatible with
                      --all-schedules, --mem-trace-out, and `--trace-out -`
  --checkpoint-every N  checkpoint every N completed kernel launches
                      (default 0: only when the run is stopped early)
  --max-wall-secs N   wall-clock watchdog: request a graceful stop after N
                      seconds (a final checkpoint is written when
                      --checkpoint-out is set)
  --stop-after-launches N  deterministic stop bound: behave exactly like a
                      signal/watchdog stop once N launches have completed
                      (counted cumulatively across a resume)

  With any of these flags, SIGINT/SIGTERM also request a graceful stop at
  the next launch boundary instead of killing the process mid-write.
  `swsim resume` rebuilds the run from the flags embedded in the
  checkpoint; only the flags listed above may be given again (stop budgets
  are per-invocation and are not inherited).

EXIT CODES:
  0 success | 1 run error | 2 usage error, or a kernel rejected by the
  static verifier (--lint deny) | 3 run succeeded but the --trace-out
  stream hit an I/O error (file truncated) | 4 hang — deadlock, cycle
  limit or Weaver timeout (report written if --hang-report was given) |
  5 stopped early by a signal, the watchdog, or --stop-after-launches
  (resumable from the checkpoint if --checkpoint-out was set)"
    );
    exit(2)
}

/// Flags each subcommand accepts; anything else is a usage error.
fn check_flags(cmd: &str, flags: &HashMap<String, String>) {
    let allowed: &[&str] = match cmd {
        "run" => &[
            "graph",
            "dataset",
            "gen",
            "algo",
            "schedule",
            "iters",
            "source",
            "config",
            "json",
            "all-schedules",
            "worklist",
            "trace",
            "trace-level",
            "sample-every",
            "metrics-out",
            "trace-out",
            "profile-out",
            "mem-trace-out",
            "lint",
            "analyze",
            "regalloc",
            "inject",
            "seed",
            "hang-report",
            "fallback",
            "checkpoint-out",
            "checkpoint-every",
            "max-wall-secs",
            "stop-after-launches",
        ],
        "resume" => &[
            "checkpoint-out",
            "checkpoint-every",
            "max-wall-secs",
            "stop-after-launches",
            "json",
        ],
        "gen" => &["graph", "dataset", "gen", "out"],
        "disasm" => &["algo", "schedule", "config"],
        "datasets" => &[],
        _ => return,
    };
    for k in flags.keys() {
        if !allowed.contains(&k.as_str()) {
            eprintln!("unknown flag `--{k}` for `swsim {cmd}`");
            exit(2)
        }
    }
}

fn parse_flags(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut pos = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            let next_is_value = args
                .get(i + 1)
                .map(|n| !n.starts_with("--"))
                .unwrap_or(false);
            if next_is_value {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_string(), String::new());
                i += 1;
            }
        } else if a == "-o" {
            flags.insert("out".into(), args.get(i + 1).cloned().unwrap_or_default());
            i += 2;
        } else {
            pos.push(a.clone());
            i += 1;
        }
    }
    (pos, flags)
}

fn parse_schedule(s: &str) -> Schedule {
    match s {
        "svm" | "S_vm" => Schedule::Svm,
        "em" | "sem" | "S_em" => Schedule::Sem,
        "wm" | "swm" | "S_wm" => Schedule::Swm,
        "cm" | "scm" | "S_cm" => Schedule::Scm,
        "sw" | "weaver" | "sparseweaver" => Schedule::SparseWeaver,
        "eghw" => Schedule::Eghw,
        other => {
            eprintln!("unknown schedule `{other}`");
            usage()
        }
    }
}

fn parse_dataset(s: &str) -> DatasetId {
    DatasetId::ALL
        .into_iter()
        .find(|d| d.short_name().eq_ignore_ascii_case(s) || d.full_name().eq_ignore_ascii_case(s))
        .unwrap_or_else(|| {
            eprintln!("unknown dataset `{s}` — see `swsim datasets`");
            exit(2)
        })
}

fn parse_gen(spec: &str) -> Csr {
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |i: usize| -> u64 {
        parts
            .get(i)
            .and_then(|p| p.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("bad generator spec `{spec}`");
                exit(2)
            })
    };
    let fnum = |i: usize| -> f64 {
        parts
            .get(i)
            .and_then(|p| p.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("bad generator spec `{spec}`");
                exit(2)
            })
    };
    let base = match parts.first().copied() {
        Some("powerlaw") => generators::powerlaw(num(1) as usize, num(2) as usize, fnum(3), num(4)),
        Some("uniform") => generators::uniform(num(1) as usize, num(2) as usize, num(3)),
        Some("rmat") => generators::rmat(num(1) as u32, num(2) as usize, 0.57, 0.19, 0.19, num(3)),
        Some("grid") => {
            generators::road_grid(num(1) as usize, num(2) as usize, fnum(3), 0.01, num(4))
        }
        _ => {
            eprintln!("bad generator spec `{spec}`");
            usage()
        }
    };
    generators::with_random_weights(&base, 64, 0xC11)
}

fn load_graph(flags: &HashMap<String, String>) -> Csr {
    if let Some(path) = flags.get("graph") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1)
        });
        match io::parse_edge_list(&text) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("cannot parse {path}: {e}");
                exit(1)
            }
        }
    } else if let Some(id) = flags.get("dataset") {
        dataset(parse_dataset(id)).graph
    } else if let Some(spec) = flags.get("gen") {
        parse_gen(spec)
    } else {
        eprintln!("one of --graph / --dataset / --gen is required");
        usage()
    }
}

fn config_for(flags: &HashMap<String, String>) -> GpuConfig {
    match flags.get("config").map(String::as_str) {
        None | Some("eval") | Some("evaluation") => GpuConfig::evaluation_default(),
        Some("vortex") => GpuConfig::vortex_default(),
        Some("small") => GpuConfig::small_test(),
        Some("8core") => GpuConfig::eight_core(),
        Some("regfile") => GpuConfig::regfile_limited(),
        Some(other) => {
            eprintln!("unknown config `{other}`");
            usage()
        }
    }
}

/// Parses `--regalloc on|off` (default: on).
fn regalloc_flag(flags: &HashMap<String, String>) -> bool {
    match flags.get("regalloc").map(String::as_str) {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => {
            eprintln!("--regalloc expects on|off, got `{other}`");
            exit(2)
        }
    }
}

/// Parses a numeric flag strictly: present-but-malformed is a usage error,
/// absent falls back to `default`.
fn numeric_flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: impl FnOnce() -> T,
) -> T {
    match flags.get(name) {
        None => default(),
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--{name} expects a number, got `{v}`");
            exit(2)
        }),
    }
}

fn make_algo(flags: &HashMap<String, String>, graph: &Csr) -> Box<dyn Algorithm> {
    let iters: u32 = numeric_flag(flags, "iters", || 5);
    let source: u32 = numeric_flag(flags, "source", || {
        (0..graph.num_vertices() as u32)
            .max_by_key(|&v| graph.degree(v))
            .unwrap_or(0)
    });
    match flags.get("algo").map(String::as_str) {
        Some("pr") | Some("pagerank") => Box::new(PageRank::new(iters)),
        Some("bfs") => Box::new(Bfs::new(source)),
        Some("sssp") => Box::new(Sssp::new(source).with_worklist(flags.contains_key("worklist"))),
        Some("cc") => Box::new(ConnectedComponents::new()),
        Some("spmv") => Box::new(Spmv::new()),
        _ => {
            eprintln!("--algo is required (pr | bfs | sssp | cc | spmv)");
            usage()
        }
    }
}

/// Validates `run` flag combinations, returning the tracing configuration
/// (if any), the output paths for the two export formats, and the
/// streaming JSONL path.
#[allow(clippy::type_complexity)]
fn trace_setup(
    flags: &HashMap<String, String>,
) -> (
    Option<TraceConfig>,
    Option<String>,
    Option<String>,
    Option<String>,
) {
    let path_flag = |name: &str| -> Option<String> {
        flags.get(name).map(|v| {
            if v.is_empty() {
                eprintln!("--{name} expects a file path");
                exit(2)
            }
            v.clone()
        })
    };
    let trace_path = path_flag("trace");
    let metrics_path = path_flag("metrics-out");
    let trace_out = path_flag("trace-out");
    let tracing = trace_path.is_some() || metrics_path.is_some() || trace_out.is_some();
    if !tracing {
        for dependent in ["trace-level", "sample-every"] {
            if flags.contains_key(dependent) {
                eprintln!("--{dependent} requires --trace, --metrics-out or --trace-out");
                exit(2)
            }
        }
        return (None, None, None, None);
    }
    if flags.contains_key("all-schedules") {
        eprintln!("tracing flags trace a single schedule; drop --all-schedules");
        exit(2)
    }
    let categories = match flags.get("trace-level") {
        None => CategoryMask::ALL,
        Some(level) => CategoryMask::parse(level).unwrap_or_else(|| {
            eprintln!("unknown trace level `{level}` (warp | mem | weaver | all)");
            exit(2)
        }),
    };
    let sample_every: u64 = numeric_flag(flags, "sample-every", || 1000);
    let cfg = TraceConfig {
        categories,
        sample_every,
        ..TraceConfig::default()
    };
    (Some(cfg), trace_path, metrics_path, trace_out)
}

/// Parses `--lint LEVEL` (default: deny).
fn lint_level(flags: &HashMap<String, String>) -> LintLevel {
    match flags.get("lint") {
        None => LintLevel::default(),
        Some(v) => v.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(2)
        }),
    }
}

/// Writes an artifact to `path`, or to stdout when `path` is `-`. The
/// confirmation line is suppressed in `--json` mode, skipped for stdout
/// itself, and routed to stderr when some other artifact is streaming
/// to stdout (it would corrupt that artifact's document).
fn write_artifact(path: &str, body: String, what: &str, json: bool, stdout_is_artifact: bool) {
    if path == "-" {
        print!("{body}");
        return;
    }
    // Atomic (temp file + rename): a crash or full disk mid-write never
    // leaves a half-written artifact at the destination path.
    write_atomic(Path::new(path), body.as_bytes()).unwrap_or_else(|e| {
        eprintln!("cannot write {what} to {path}: {e}");
        exit(1)
    });
    if !json {
        if stdout_is_artifact {
            eprintln!("{what} written to {path}");
        } else {
            println!("{what} written to {path}");
        }
    }
}

/// Shared driver behind `swsim run` and `swsim resume`. `argv` is the
/// argument vector embedded into checkpoints (for `run`, this invocation's
/// own arguments; for `resume`, the original run's, kept canonical so a
/// resumed run's checkpoints are themselves resumable). `resume` carries
/// the loaded checkpoint when continuing an interrupted run.
fn cmd_run(argv: Vec<String>, flags: HashMap<String, String>, resume: Option<Checkpoint>) {
    let sources = ["graph", "dataset", "gen"]
        .iter()
        .filter(|s| flags.contains_key(**s))
        .count();
    if sources > 1 {
        eprintln!("--graph, --dataset and --gen are mutually exclusive");
        exit(2)
    }
    if flags.contains_key("all-schedules") && flags.contains_key("schedule") {
        eprintln!("--schedule conflicts with --all-schedules");
        exit(2)
    }
    let (trace_cfg, trace_path, metrics_path, trace_out) = trace_setup(&flags);
    let profile_out = flags.get("profile-out").map(|v| {
        if v.is_empty() {
            eprintln!("--profile-out expects a file path (or `-` for stdout)");
            exit(2)
        }
        v.clone()
    });
    if profile_out.is_some() && flags.contains_key("all-schedules") {
        eprintln!("--profile-out profiles a single schedule; drop --all-schedules");
        exit(2)
    }
    let mem_trace_out = flags.get("mem-trace-out").map(|v| {
        if v.is_empty() {
            eprintln!("--mem-trace-out expects a file path (or `-` for stdout)");
            exit(2)
        }
        v.clone()
    });
    if mem_trace_out.is_some() && flags.contains_key("all-schedules") {
        eprintln!("--mem-trace-out captures a single schedule; drop --all-schedules");
        exit(2)
    }
    let opt_numeric = |name: &str| -> Option<u64> {
        flags.get(name).map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--{name} expects a number, got `{v}`");
                exit(2)
            })
        })
    };
    let checkpoint_out = flags.get("checkpoint-out").map(|v| {
        if v.is_empty() {
            eprintln!("--checkpoint-out expects a file path");
            exit(2)
        }
        if v == "-" {
            eprintln!("--checkpoint-out is a binary artifact and cannot stream to stdout");
            exit(2)
        }
        v.clone()
    });
    let checkpoint_every: u64 = numeric_flag(&flags, "checkpoint-every", || 0);
    let max_wall_secs = opt_numeric("max-wall-secs");
    let stop_after_launches = opt_numeric("stop-after-launches");
    if flags.contains_key("checkpoint-every") && checkpoint_out.is_none() {
        eprintln!("--checkpoint-every requires --checkpoint-out");
        exit(2)
    }
    if checkpoint_out.is_some() {
        if flags.contains_key("all-schedules") {
            eprintln!("--checkpoint-out checkpoints a single schedule; drop --all-schedules");
            exit(2)
        }
        if mem_trace_out.is_some() {
            eprintln!(
                "--checkpoint-out cannot be combined with --mem-trace-out: the \
                 memory-trace recorder is not part of the checkpointed state"
            );
            exit(2)
        }
        if trace_out.as_deref() == Some("-") {
            eprintln!(
                "--checkpoint-out cannot be combined with `--trace-out -`: a stdout \
                 event stream cannot be rewound on resume"
            );
            exit(2)
        }
    }
    let graph = load_graph(&flags);
    let algo = make_algo(&flags, &graph);
    let cfg = config_for(&flags);
    let mut session = Session::new(cfg);
    session.profile = profile_out.is_some();
    session.trace = trace_cfg;
    session.trace_out = trace_out.clone().map(std::path::PathBuf::from);
    session.mem_trace_out = mem_trace_out.clone().map(std::path::PathBuf::from);
    session.lint = lint_level(&flags);
    session.analyze = flags.contains_key("analyze");
    session.regalloc = regalloc_flag(&flags);
    if let Some(spec) = flags.get("inject") {
        session.inject = Some(FaultSpec::parse(spec).unwrap_or_else(|e| {
            eprintln!("bad --inject spec: {e}");
            exit(2)
        }));
        session.inject_seed = numeric_flag(&flags, "seed", || 0);
    } else if flags.contains_key("seed") {
        eprintln!("--seed requires --inject");
        exit(2)
    }
    session.fallback = match flags.get("fallback").map(String::as_str) {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => {
            eprintln!("--fallback expects on|off, got `{other}`");
            exit(2)
        }
    };
    // Checkpointing and graceful shutdown: any of the stop/checkpoint
    // flags routes SIGINT/SIGTERM (and the wall-clock watchdog) to a
    // cooperative stop at the next launch boundary.
    if checkpoint_out.is_some() || max_wall_secs.is_some() || stop_after_launches.is_some() {
        let stop = sparseweaver::shutdown::stop_flag();
        sparseweaver::shutdown::install_signal_handler(&stop);
        if let Some(secs) = max_wall_secs {
            sparseweaver::shutdown::spawn_watchdog(&stop, secs);
        }
        session.checkpoint = Some(CheckpointCtl {
            out: checkpoint_out.clone().map(PathBuf::from),
            every: checkpoint_every,
            argv: argv.clone(),
            stop: Some(stop),
            stop_after_launches,
            ..CheckpointCtl::default()
        });
    }
    let hang_report_path = flags.get("hang-report").map(|v| {
        if v.is_empty() {
            eprintln!("--hang-report expects a file path");
            exit(2)
        }
        v.clone()
    });
    let json = flags.contains_key("json");
    // With an artifact streaming to stdout (path `-`), the run summary
    // moves to stderr so stdout parses as one clean document.
    let stdout_is_artifact = [
        &trace_path,
        &metrics_path,
        &trace_out,
        &profile_out,
        &mem_trace_out,
    ]
    .iter()
    .any(|p| p.as_deref() == Some("-"))
        || hang_report_path.as_deref() == Some("-");
    macro_rules! summary {
        ($($t:tt)*) => {
            if stdout_is_artifact { eprintln!($($t)*) } else { println!($($t)*) }
        };
    }
    let mut sink_failed = false;
    let schedules: Vec<Schedule> = if let Some(ck) = &resume {
        // The checkpoint records the schedule that was actually executing
        // (after a graceful-degradation fallback this is `S_wm`, not the
        // originally requested scheme).
        vec![ck.schedule]
    } else if flags.contains_key("all-schedules") {
        Schedule::ALL.to_vec()
    } else {
        vec![parse_schedule(
            flags
                .get("schedule")
                .map(String::as_str)
                .unwrap_or_else(|| usage()),
        )]
    };
    if !json {
        summary!(
            "graph: {} vertices, {} edges | algorithm: {}",
            graph.num_vertices(),
            graph.num_edges(),
            algo.name()
        );
    }
    let mut baseline = None;
    for schedule in schedules {
        if session.analyze {
            match session.analyze_kernels(algo.as_ref(), schedule) {
                Ok(reports) => {
                    for r in &reports {
                        if json {
                            summary!("{}", r.to_json());
                        } else if !r.is_clean() || r.advice_count() > 0 {
                            for line in r.to_text().lines().skip(1) {
                                summary!("  {line}");
                            }
                        }
                    }
                }
                Err(e) => {
                    eprintln!("analyze failed: {e}");
                    exit(1)
                }
            }
        }
        let result = match &resume {
            Some(ck) => session.resume(&graph, algo.as_ref(), ck),
            None => session.run(&graph, algo.as_ref(), schedule),
        };
        let report = match result {
            Ok(report) => report,
            Err(e @ FrameworkError::Lint { .. }) => {
                eprintln!("run failed: {e}");
                exit(2)
            }
            Err(e @ FrameworkError::Interrupted { .. }) => {
                eprintln!("run stopped: {e}");
                exit(5)
            }
            Err(FrameworkError::Sim(e)) if e.hang_report().is_some() => {
                eprintln!("run failed: {e}");
                if let Some(path) = &hang_report_path {
                    let hang = e.hang_report().expect("variant carries a report");
                    let mut body = hang.to_json();
                    body.push('\n');
                    if path == "-" {
                        print!("{body}");
                    } else {
                        write_atomic(Path::new(path), body.as_bytes()).unwrap_or_else(|err| {
                            eprintln!("cannot write hang report to {path}: {err}");
                            exit(1)
                        });
                        eprintln!("hang report written to {path}");
                    }
                }
                exit(4)
            }
            Err(e) => {
                eprintln!("run failed: {e}");
                exit(1)
            }
        };
        if json {
            summary!(
                "{}",
                serde_json_line(&[
                    ("schedule", format!("{:?}", schedule.paper_name())),
                    ("algorithm", format!("{:?}", report.algorithm)),
                    ("cycles", report.cycles.to_string()),
                    ("instructions", report.stats.instructions.to_string()),
                    ("launches", report.stats.launches.to_string()),
                    ("ipc", format!("{:.4}", report.stats.ipc())),
                    ("dram_accesses", report.stats.mem.dram_accesses.to_string()),
                    (
                        "kernel_high_water",
                        report.occupancy.kernel_high_water.to_string()
                    ),
                    ("warps_resident", report.occupancy.resident.to_string()),
                    ("warps_configured", report.occupancy.configured.to_string()),
                ])
            );
        } else {
            let speed = baseline
                .map(|b: u64| format!("  {:.2}x vs first", b as f64 / report.cycles.max(1) as f64))
                .unwrap_or_default();
            let occ = &report.occupancy;
            let capped = if occ.resident < occ.configured {
                format!(
                    "  [regfile cap: {}/{} warps resident, hw {}]",
                    occ.resident, occ.configured, occ.kernel_high_water
                )
            } else {
                String::new()
            };
            summary!(
                "{:<13} {:>12} cycles  {:>10} instrs  ipc {:>5.2}  {} launches{speed}{capped}",
                schedule.to_string(),
                report.cycles,
                report.stats.instructions,
                report.stats.ipc(),
                report.stats.launches,
            );
        }
        if let Some(kind) = report.sink_error {
            eprintln!("warning: trace event stream is incomplete ({kind:?}); events were lost");
            sink_failed = true;
        }
        if let Some(mt) = &report.mem_trace {
            match mt.sink_error {
                Some(kind) => {
                    eprintln!(
                        "warning: memory trace is incomplete ({kind:?}); the capture is truncated"
                    );
                    sink_failed = true;
                }
                None => {
                    if let Some(path) = &mem_trace_out {
                        if !json && path != "-" {
                            summary!(
                                "memory trace written to {path} ({} records, {} bytes)",
                                mt.records,
                                mt.bytes
                            );
                        }
                    }
                }
            }
        }
        if baseline.is_none() {
            baseline = Some(report.cycles);
        }
        if let Some(trace) = &report.trace {
            if let Some(path) = &trace_path {
                write_artifact(
                    path,
                    export::chrome_trace_json(trace),
                    "chrome trace",
                    json,
                    stdout_is_artifact,
                );
            }
            if let Some(path) = &metrics_path {
                write_artifact(
                    path,
                    export::metrics_json(trace),
                    "metrics",
                    json,
                    stdout_is_artifact,
                );
            }
            if let Some(path) = &trace_out {
                if !json && path != "-" {
                    summary!("event stream written to {path}");
                }
            }
        }
        if let Some(path) = &profile_out {
            let body = sparseweaver::core::profile::render(&report, &cfg, &graph);
            write_artifact(path, body, "profile", json, stdout_is_artifact);
        }
    }
    if sink_failed {
        exit(3)
    }
}

/// `swsim resume CKPT`: loads the checkpoint, rebuilds the run from the
/// flags embedded in it, and continues to completion (bit-identical to
/// the uninterrupted run). Stop budgets (`--max-wall-secs`,
/// `--stop-after-launches`) are per-invocation and deliberately not
/// inherited from the embedded flags — the bound that interrupted the
/// original run would otherwise re-fire immediately. The checkpoint
/// output path and cadence *are* inherited, so a resumed run keeps
/// writing resumable checkpoints unless overridden.
fn cmd_resume(pos: Vec<String>, flags: HashMap<String, String>) {
    let Some(path) = pos.first() else {
        eprintln!("swsim resume needs a checkpoint path");
        usage()
    };
    let ck = Checkpoint::load(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("cannot resume from {path}: {e}");
        exit(1)
    });
    if ck.argv.first().map(String::as_str) != Some("run") {
        eprintln!(
            "checkpoint {path} embeds an unexpected command {:?} (expected `run`)",
            ck.argv.first()
        );
        exit(1)
    }
    let (_pos, mut eff) = parse_flags(&ck.argv[1..]);
    check_flags("run", &eff);
    eff.remove("max-wall-secs");
    eff.remove("stop-after-launches");
    for k in [
        "checkpoint-out",
        "checkpoint-every",
        "max-wall-secs",
        "stop-after-launches",
        "json",
    ] {
        if let Some(v) = flags.get(k) {
            eff.insert(k.to_string(), v.clone());
        }
    }
    cmd_run(ck.argv.clone(), eff, Some(ck))
}

fn serde_json_line(fields: &[(&str, String)]) -> String {
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| {
            if v.starts_with('"') || v.parse::<f64>().is_ok() {
                format!("\"{k}\":{v}")
            } else {
                format!("\"{k}\":\"{v}\"")
            }
        })
        .collect();
    format!("{{{}}}", body.join(","))
}

fn cmd_gen(flags: HashMap<String, String>) {
    let graph = load_graph(&flags);
    let out = flags.get("out").cloned().unwrap_or_else(|| usage());
    let mut body = Vec::new();
    io::write_edge_list(&graph, &mut body).unwrap_or_else(|e| {
        eprintln!("cannot render edge list for {out}: {e}");
        exit(1)
    });
    write_atomic(Path::new(&out), &body).unwrap_or_else(|e| {
        eprintln!("cannot write edge list to {out}: {e}");
        exit(1)
    });
    println!(
        "wrote {} vertices, {} edges to {out}",
        graph.num_vertices(),
        graph.num_edges()
    );
}

fn cmd_disasm(flags: HashMap<String, String>) {
    use sparseweaver::core::compiler::{build_gather_kernel, EdgeRegs, GatherOps};
    // A representative gather (PR-shaped accumulate) for inspection.
    struct Demo;
    impl GatherOps for Demo {
        fn emit_pro(&self, a: &mut sparseweaver::isa::Asm) -> Vec<sparseweaver::isa::Reg> {
            let p = a.reg();
            a.ldarg(p, 8);
            vec![p]
        }
        fn emit_compute(
            &self,
            a: &mut sparseweaver::isa::Asm,
            pro: &[sparseweaver::isa::Reg],
            e: &EdgeRegs,
            _x: bool,
        ) {
            let addr = a.reg();
            let old = a.reg();
            let one = a.reg();
            a.slli(addr, e.base, 3);
            a.add(addr, addr, pro[0]);
            a.li(one, 1);
            a.atom(sparseweaver::isa::AtomOp::Add, old, addr, one);
            a.free(one);
            a.free(old);
            a.free(addr);
        }
    }
    let schedule = parse_schedule(flags.get("schedule").map(String::as_str).unwrap_or("sw"));
    let cfg = config_for(&flags);
    let kernel = build_gather_kernel("demo", &Demo, schedule, &cfg);
    print!("{kernel}");
}

fn cmd_datasets() {
    println!(
        "{:<8} {:<20} {:>12} {:>12}",
        "id", "name", "paper |V|", "paper |E|"
    );
    for id in DatasetId::ALL {
        let (v, e) = id.paper_size();
        println!(
            "{:<8} {:<20} {:>12} {:>12}",
            id.short_name(),
            id.full_name(),
            v,
            e
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--version" || a == "-V") {
        println!("swsim {}", sparseweaver::VERSION);
        return;
    }
    let Some(cmd) = args.first() else { usage() };
    let (pos, flags) = parse_flags(&args[1..]);
    check_flags(cmd, &flags);
    match cmd.as_str() {
        "run" => cmd_run(args.clone(), flags, None),
        "resume" => cmd_resume(pos, flags),
        "gen" => cmd_gen(flags),
        "disasm" => cmd_disasm(flags),
        "datasets" => cmd_datasets(),
        _ => usage(),
    }
}
