//! `swfault` — run deterministic fault-injection campaigns against the
//! simulated SparseWeaver GPU.
//!
//! ```text
//! swfault --inject reg=0.002,mem=0.001 --runs 200 --seed 42
//! swfault --inject weaver-drop=1.0 --algo bfs --schedule sw --details
//! swfault --inject fetch=0.005 --gen powerlaw:200:2000:2.2:7 --out summary.json
//! ```
//!
//! A campaign executes one fault-free golden run, then N seeded injected
//! runs, classifying each as **masked**, **SDC**, **detected-crash** or
//! **hang** (see `docs/robustness.md`). The summary JSON is byte-identical
//! for identical `(spec, seed, runs)` — CI diffs it against a golden file
//! via `scripts/check_fault_campaign.sh`.

use std::collections::HashMap;
use std::path::Path;
use std::process::exit;

use sparseweaver::core::algorithms::{Algorithm, Bfs, ConnectedComponents, PageRank, Spmv, Sssp};
use sparseweaver::core::campaign::{run_campaign_with, CampaignConfig, CampaignCtl};
use sparseweaver::core::checkpoint::write_atomic;
use sparseweaver::core::runtime::DEFAULT_WEAVER_RETRIES;
use sparseweaver::core::{FrameworkError, Schedule};
use sparseweaver::fault::FaultSpec;
use sparseweaver::graph::{dataset, generators, io, Csr, DatasetId};
use sparseweaver::sim::GpuConfig;

fn usage() -> ! {
    eprintln!(
        "swfault — SparseWeaver fault-injection campaign runner

USAGE:
  swfault --inject SPEC [--runs N] [--seed N]
          [--graph FILE | --dataset ID | --gen GSPEC]
          [--algo ALGO] [--schedule S] [--iters N] [--source V]
          [--config vortex|eval|small|8core|regfile]
          [--retries N] [--jobs N] [--no-fallback]
          [--out FILE] [--details]
          [--journal FILE [--resume]] [--max-wall-secs N]
  swfault --version

  SPEC:  comma-separated site=rate clauses, sites:
         reg | mem | fetch | weaver-drop | weaver-delay[:<cycles>]
         e.g. `reg=0.001,mem=0.0005,weaver-drop=0.01`
  ALGO:  pr | bfs | sssp | cc | spmv          (default bfs)
  S:     svm | em | wm | cm | sw | eghw       (default sw)
  GSPEC: powerlaw:V:E:ALPHA:SEED | uniform:V:E:SEED | rmat:SCALE:E:SEED

  --runs N       injected runs (default 200)
  --seed N       campaign seed; run i uses child_seed(seed, i) (default 0)
  --retries N    launch retries after a Weaver response timeout (default 2)
  --jobs N       worker threads for injected runs (default 1). Any value
                 produces byte-identical output; results fold in run order.
  --no-fallback  forbid degrading to S_wm when Weaver retries exhaust —
                 such runs classify as hangs instead of masked
  --out FILE     also write the summary JSON to FILE (`-` = stdout, which
                 already carries it)
  --details      print one line per run (index, seed, class, detail)

  With no graph flag, a small built-in uniform graph is used so a default
  campaign finishes quickly.

JOURNAL / RESUME:
  --journal FILE  append-only JSONL journal: a header identifying the
                 campaign, then one line per completed run, flushed as
                 runs finish. With a journal, SIGINT/SIGTERM stop the
                 campaign gracefully at a run boundary (exit 5)
  --resume       re-run only the indices the journal is missing, then
                 render the summary — byte-identical to the uninterrupted
                 campaign at any --jobs value. The journal must have been
                 written by the same campaign (spec, seed, runs, graph,
                 config); a torn final line from a kill is tolerated
  --max-wall-secs N  wall-clock watchdog: request a graceful stop after N
                 seconds

EXIT CODES:
  0 campaign ran, every run classified, no panics | 1 campaign failed
  (golden run error, a run escaped classification, or a panic in the
  machine model) | 2 usage error | 5 stopped early by a signal or the
  watchdog — completed runs are journaled, finish with --resume"
    );
    exit(2)
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let allowed = [
        "inject",
        "runs",
        "seed",
        "graph",
        "dataset",
        "gen",
        "algo",
        "schedule",
        "iters",
        "source",
        "config",
        "retries",
        "jobs",
        "no-fallback",
        "out",
        "details",
        "journal",
        "resume",
        "max-wall-secs",
    ];
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(name) = args[i].strip_prefix("--") else {
            eprintln!("unexpected argument `{}`", args[i]);
            usage()
        };
        if !allowed.contains(&name) {
            eprintln!("unknown flag `--{name}`");
            usage()
        }
        let next_is_value = args
            .get(i + 1)
            .map(|n| !n.starts_with("--"))
            .unwrap_or(false);
        if next_is_value {
            flags.insert(name.to_string(), args[i + 1].clone());
            i += 2;
        } else {
            flags.insert(name.to_string(), String::new());
            i += 1;
        }
    }
    flags
}

fn numeric_flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> T {
    match flags.get(name) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--{name} expects a number, got `{v}`");
            exit(2)
        }),
    }
}

fn parse_schedule(s: &str) -> Schedule {
    match s {
        "svm" | "S_vm" => Schedule::Svm,
        "em" | "sem" | "S_em" => Schedule::Sem,
        "wm" | "swm" | "S_wm" => Schedule::Swm,
        "cm" | "scm" | "S_cm" => Schedule::Scm,
        "sw" | "weaver" | "sparseweaver" => Schedule::SparseWeaver,
        "eghw" => Schedule::Eghw,
        other => {
            eprintln!("unknown schedule `{other}`");
            usage()
        }
    }
}

fn parse_gen(spec: &str) -> Csr {
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |i: usize| -> u64 {
        parts
            .get(i)
            .and_then(|p| p.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("bad generator spec `{spec}`");
                exit(2)
            })
    };
    let fnum = |i: usize| -> f64 {
        parts
            .get(i)
            .and_then(|p| p.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("bad generator spec `{spec}`");
                exit(2)
            })
    };
    let base = match parts.first().copied() {
        Some("powerlaw") => generators::powerlaw(num(1) as usize, num(2) as usize, fnum(3), num(4)),
        Some("uniform") => generators::uniform(num(1) as usize, num(2) as usize, num(3)),
        Some("rmat") => generators::rmat(num(1) as u32, num(2) as usize, 0.57, 0.19, 0.19, num(3)),
        _ => {
            eprintln!("bad generator spec `{spec}`");
            usage()
        }
    };
    generators::with_random_weights(&base, 64, 0xC11)
}

fn load_graph(flags: &HashMap<String, String>) -> Csr {
    if let Some(path) = flags.get("graph") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1)
        });
        match io::parse_edge_list(&text) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("cannot parse {path}: {e}");
                exit(1)
            }
        }
    } else if let Some(id) = flags.get("dataset") {
        let id = DatasetId::ALL
            .into_iter()
            .find(|d| {
                d.short_name().eq_ignore_ascii_case(id) || d.full_name().eq_ignore_ascii_case(id)
            })
            .unwrap_or_else(|| {
                eprintln!("unknown dataset `{id}` — see `swsim datasets`");
                exit(2)
            });
        dataset(id).graph
    } else if let Some(spec) = flags.get("gen") {
        parse_gen(spec)
    } else {
        // Small default so `swfault --inject ... --runs 200` stays fast.
        generators::with_random_weights(&generators::uniform(24, 72, 7), 64, 0xC11)
    }
}

fn config_for(flags: &HashMap<String, String>) -> GpuConfig {
    match flags.get("config").map(String::as_str) {
        None | Some("small") => GpuConfig::small_test(),
        Some("eval") | Some("evaluation") => GpuConfig::evaluation_default(),
        Some("vortex") => GpuConfig::vortex_default(),
        Some("8core") => GpuConfig::eight_core(),
        Some("regfile") => GpuConfig::regfile_limited(),
        Some(other) => {
            eprintln!("unknown config `{other}`");
            usage()
        }
    }
}

fn make_algo(flags: &HashMap<String, String>, graph: &Csr) -> Box<dyn Algorithm> {
    let iters: u32 = numeric_flag(flags, "iters", 5);
    let source: u32 = numeric_flag(flags, "source", 0);
    let _ = graph;
    match flags.get("algo").map(String::as_str) {
        None | Some("bfs") => Box::new(Bfs::new(source)),
        Some("pr") | Some("pagerank") => Box::new(PageRank::new(iters)),
        Some("sssp") => Box::new(Sssp::new(source)),
        Some("cc") => Box::new(ConnectedComponents::new()),
        Some("spmv") => Box::new(Spmv::new()),
        Some(other) => {
            eprintln!("unknown algorithm `{other}` (pr | bfs | sssp | cc | spmv)");
            usage()
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--version" || a == "-V") {
        println!("swfault {}", sparseweaver::VERSION);
        return;
    }
    let flags = parse_flags(&args);
    let Some(spec_text) = flags.get("inject") else {
        eprintln!("--inject SPEC is required");
        usage()
    };
    let spec = FaultSpec::parse(spec_text).unwrap_or_else(|e| {
        eprintln!("bad --inject spec: {e}");
        exit(2)
    });
    let mut campaign = CampaignConfig::new(
        spec,
        numeric_flag(&flags, "seed", 0),
        numeric_flag(&flags, "runs", 200),
    );
    campaign.max_weaver_retries = numeric_flag(&flags, "retries", DEFAULT_WEAVER_RETRIES);
    campaign.jobs = numeric_flag(&flags, "jobs", 1);
    campaign.fallback = !flags.contains_key("no-fallback");
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
    if campaign.jobs > hardware {
        eprintln!(
            "warning: --jobs {} exceeds the {hardware} hardware thread(s) available — \
             extra workers only add contention",
            campaign.jobs
        );
    }
    let graph = load_graph(&flags);
    let algo = make_algo(&flags, &graph);
    let schedule = parse_schedule(flags.get("schedule").map(String::as_str).unwrap_or("sw"));
    let cfg = config_for(&flags);

    let journal = match flags.get("journal") {
        Some(p) if p.is_empty() || p == "-" => {
            eprintln!("--journal expects a file path (the journal is append-only JSONL)");
            exit(2)
        }
        Some(p) => Some(std::path::PathBuf::from(p)),
        None => None,
    };
    let resume = flags.contains_key("resume");
    if resume && journal.is_none() {
        eprintln!("--resume requires --journal FILE (the journal records completed runs)");
        exit(2)
    }
    let max_wall_secs: u64 = numeric_flag(&flags, "max-wall-secs", 0);
    let mut ctl = CampaignCtl {
        journal,
        resume,
        stop: None,
    };
    if ctl.journal.is_some() || max_wall_secs > 0 {
        let stop = sparseweaver::shutdown::stop_flag();
        sparseweaver::shutdown::install_signal_handler(&stop);
        if max_wall_secs > 0 {
            sparseweaver::shutdown::spawn_watchdog(&stop, max_wall_secs);
        }
        ctl.stop = Some(stop);
    }

    let started = std::time::Instant::now();
    let result = run_campaign_with(&cfg, &graph, algo.as_ref(), schedule, &campaign, &ctl)
        .unwrap_or_else(|e| match e {
            FrameworkError::Interrupted { .. } => {
                eprintln!("campaign stopped: {e}");
                exit(5)
            }
            _ => {
                eprintln!("campaign failed: {e}");
                exit(1)
            }
        });
    let elapsed = started.elapsed();
    if let Some(kind) = result.journal_error {
        eprintln!(
            "warning: journal append failed ({kind:?}) — a later --resume may re-run \
             some completed runs"
        );
    }

    if flags.contains_key("details") {
        for run in &result.runs {
            eprintln!(
                "run {:>4}  seed {:#018x}  {:<14} {}",
                run.index,
                run.seed,
                run.outcome.label(),
                run.detail
            );
        }
    }
    let json = result.summary.to_json();
    println!("{json}");
    // Human-facing throughput line on stderr only: stdout must stay
    // byte-identical so `scripts/check_fault_campaign.sh` can diff it.
    let secs = elapsed.as_secs_f64();
    let rate = if secs > 0.0 {
        f64::from(campaign.runs) / secs
    } else {
        f64::INFINITY
    };
    let s = &result.summary;
    eprintln!(
        "{} runs in {:.3}s ({:.1} runs/s, jobs={}): \
         masked {} | sdc {} | detected-crash {} | hang {}",
        campaign.runs, secs, rate, campaign.jobs, s.masked, s.sdc, s.detected_crash, s.hang
    );
    if let Some(path) = flags.get("out") {
        if path.is_empty() {
            eprintln!("--out expects a file path (or `-` for stdout)");
            exit(2)
        }
        if path == "-" {
            // The summary JSON already went to stdout above; writing it
            // again would duplicate the artifact.
            eprintln!("summary already on stdout (--out -)");
        } else {
            write_atomic(Path::new(path), format!("{json}\n").as_bytes()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(1)
            });
            eprintln!("summary written to {path}");
        }
    }
    if result.panics > 0 {
        eprintln!(
            "FAIL: {} run(s) panicked — the machine model must surface faults as typed errors",
            result.panics
        );
        exit(1)
    }
    if !result.summary.is_classified() {
        eprintln!("FAIL: outcome classes do not sum to the number of runs");
        exit(1)
    }
}
