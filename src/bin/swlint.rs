//! `swlint` — static verifier for SparseWeaver kernel IR.
//!
//! Compiles the built-in algorithm kernels (without touching a simulated
//! device) and runs the `sparseweaver-lint` CFG/dataflow verifier over
//! each: use-before-def, dead writes, unreachable code, divergence-stack
//! balance, barrier-under-divergence deadlocks, `tmc 0` wedges, and the
//! Weaver registration protocol. Rule catalog: `docs/lint-rules.md`.
//!
//! With `--analyze`, additionally runs the abstract-interpretation
//! engine (SW-L5xx): value ranges, warp uniformity, static OOB/race
//! checks, and the coalescing advisor, against the launch geometry of
//! the selected `--config`.
//!
//! ```text
//! swlint                         # every algorithm x every schedule
//! swlint --algo bfs --schedule sw
//! swlint --json                  # one LintReport JSON object per line
//! swlint --analyze [--json]      # + SW-L5xx abstract interpretation
//! swlint --analyze --facts       # dump the raw fixpoint facts
//! swlint --selftest              # verify the seeded fixtures
//! swlint --version
//! ```
//!
//! Exit status: 0 when every kernel is clean (and, for `--selftest`,
//! when every seeded fixture triggers its documented rule — same
//! convention as `swprof --selftest`), 1 when any error-severity
//! finding fires or a selftest fixture misses, 2 on usage errors.

use std::collections::{HashMap, HashSet};
use std::process::exit;

use sparseweaver::core::algorithms::{
    Algorithm, Bfs, ConnectedComponents, Gcn, PageRank, Spmv, Sssp,
};
use sparseweaver::core::Schedule;
use sparseweaver::graph::Direction;
use sparseweaver::isa::Program;
use sparseweaver::lint::{analyze_with_facts, fixtures, lint, AnalyzeGeom, LintReport};
use sparseweaver::sim::GpuConfig;

/// The launch geometry the analyzer checks against, from the same
/// `--config` the simulator would launch with.
fn analyze_geom(cfg: &GpuConfig) -> AnalyzeGeom {
    AnalyzeGeom {
        num_cores: cfg.num_cores as u64,
        warps_per_core: cfg.warps_per_core as u64,
        threads_per_warp: cfg.threads_per_warp as u64,
        shared_mem_bytes: cfg.shared_mem_bytes as u64,
    }
}

fn usage() -> ! {
    eprintln!(
        "swlint — SparseWeaver kernel-IR static verifier

USAGE:
  swlint [--algo ALGO] [--schedule S] [--config vortex|eval|small|8core|regfile]
         [--regalloc on|off] [--regs] [--json] [--analyze] [--facts]
  swlint --selftest [--json]
  swlint --version

  ALGO:  pr | pr-push | bfs | sssp | sssp-wl | cc | spmv | gcn   (default: all)
  S:     svm | em | wm | cm | sw | eghw                          (default: all)

  --json      one LintReport JSON object per kernel, one per line
              (with --analyze, a second object per kernel for SW-L5xx)
  --analyze   also run the abstract-interpretation engine (SW-L5xx:
              static OOB, barrier-interval races, coalescing/bank
              advisories, uniform branches) against the launch geometry
              of --config; findings carry kernel + schedule context
  --facts     with --analyze, dump the raw value/access facts the
              fixpoint computed (implies --analyze)
  --regalloc  on|off: run liveness-based register allocation before
              linting, as the runtime does before launching (default on)
  --regs      print one `LABEL PRE POST` register-high-water line per
              kernel instead of lint reports (drives the CI register-
              pressure budget); the exit code still reflects lint errors
  --selftest  check the seeded fixtures: each ill-formed program must
              trigger its documented rule, and each analyzer fixture its
              SW-L5xx rule; exits 0 when the verifier is healthy, 1 when
              any fixture misses (same convention as swprof --selftest)

Rule catalog: docs/lint-rules.md (SW-L1xx dataflow, SW-L2xx divergence
stack, SW-L3xx barrier/mask, SW-L4xx Weaver protocol, SW-L5xx abstract
interpretation)."
    );
    exit(2)
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(name) = args[i].strip_prefix("--") else {
            eprintln!("unexpected argument `{}`", args[i]);
            usage()
        };
        let next_is_value = args
            .get(i + 1)
            .map(|n| !n.starts_with("--"))
            .unwrap_or(false);
        if next_is_value {
            flags.insert(name.to_string(), args[i + 1].clone());
            i += 2;
        } else {
            flags.insert(name.to_string(), String::new());
            i += 1;
        }
    }
    for k in flags.keys() {
        if ![
            "algo", "schedule", "config", "json", "selftest", "regalloc", "regs", "analyze",
            "facts",
        ]
        .contains(&k.as_str())
        {
            eprintln!("unknown flag `--{k}`");
            usage()
        }
    }
    flags
}

fn parse_schedules(flags: &HashMap<String, String>) -> Vec<Schedule> {
    match flags.get("schedule").map(String::as_str) {
        None => Schedule::ALL.to_vec(),
        Some("svm") | Some("S_vm") => vec![Schedule::Svm],
        Some("em") | Some("sem") | Some("S_em") => vec![Schedule::Sem],
        Some("wm") | Some("swm") | Some("S_wm") => vec![Schedule::Swm],
        Some("cm") | Some("scm") | Some("S_cm") => vec![Schedule::Scm],
        Some("sw") | Some("weaver") | Some("sparseweaver") => vec![Schedule::SparseWeaver],
        Some("eghw") => vec![Schedule::Eghw],
        Some(other) => {
            eprintln!("unknown schedule `{other}`");
            usage()
        }
    }
}

fn config_for(flags: &HashMap<String, String>) -> GpuConfig {
    match flags.get("config").map(String::as_str) {
        None | Some("eval") | Some("evaluation") => GpuConfig::evaluation_default(),
        Some("vortex") => GpuConfig::vortex_default(),
        Some("small") => GpuConfig::small_test(),
        Some("8core") => GpuConfig::eight_core(),
        Some("regfile") => GpuConfig::regfile_limited(),
        Some(other) => {
            eprintln!("unknown config `{other}`");
            usage()
        }
    }
}

/// Parses `--regalloc on|off` (default: on).
fn regalloc_flag(flags: &HashMap<String, String>) -> bool {
    match flags.get("regalloc").map(String::as_str) {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => {
            eprintln!("--regalloc expects on|off, got `{other}`");
            exit(2)
        }
    }
}

/// Applies register allocation when `regalloc` is on, mirroring what the
/// runtime launches; identity when the allocator bails out.
fn maybe_allocate(program: Program, regalloc: bool) -> Program {
    if !regalloc {
        return program;
    }
    let result = sparseweaver::core::compiler::regalloc::allocate(&program);
    if result.applied {
        result.program
    } else {
        program
    }
}

/// The built-in algorithms, keyed the way `--algo` selects them. Kernel
/// parameters (source vertex, iteration counts) do not affect the emitted
/// instruction stream, so fixed placeholders suffice.
fn algorithms(selected: Option<&str>) -> Vec<(&'static str, Box<dyn Algorithm>)> {
    let all: Vec<(&'static str, Box<dyn Algorithm>)> = vec![
        ("pr", Box::new(PageRank::new(1))),
        (
            "pr-push",
            Box::new(PageRank::new(1).with_direction(Direction::Push)),
        ),
        ("bfs", Box::new(Bfs::new(0))),
        ("sssp", Box::new(Sssp::new(0))),
        ("sssp-wl", Box::new(Sssp::new(0).with_worklist(true))),
        ("cc", Box::new(ConnectedComponents::new())),
        ("spmv", Box::new(Spmv::new())),
    ];
    match selected {
        None => all,
        Some(name) => {
            let found: Vec<_> = all.into_iter().filter(|(n, _)| *n == name).collect();
            if found.is_empty() && name != "gcn" {
                eprintln!("unknown algorithm `{name}` (pr | pr-push | bfs | sssp | sssp-wl | cc | spmv | gcn)");
                usage()
            }
            found
        }
    }
}

fn report_line(label: &str, program: &Program, report: &LintReport, json: bool) {
    if json {
        println!("{}", report.to_json());
        return;
    }
    if report.is_clean() && report.warning_count() == 0 {
        println!("ok    {label:<28} {:>4} instrs", program.len());
    } else {
        println!(
            "FAIL  {label:<28} {:>4} instrs  {} error(s), {} warning(s)",
            program.len(),
            report.error_count(),
            report.warning_count()
        );
        for line in report.to_text().lines() {
            println!("      {line}");
        }
    }
}

fn cmd_lint(flags: &HashMap<String, String>) -> i32 {
    let json = flags.contains_key("json");
    let regalloc = regalloc_flag(flags);
    let regs_mode = flags.contains_key("regs");
    let facts_mode = flags.contains_key("facts");
    let analyze_mode = flags.contains_key("analyze") || facts_mode;
    let cfg = config_for(flags);
    let geom = analyze_geom(&cfg);
    let schedules = parse_schedules(flags);
    let algo_filter = flags.get("algo").map(String::as_str);
    let mut seen: HashSet<String> = HashSet::new();
    let mut kernels = 0usize;
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut advisories = 0usize;
    let mut diverged = 0usize;
    let mut process = |label: String, schedule: Schedule, program: Program| {
        let pre = program.register_high_water();
        let program = maybe_allocate(program, regalloc);
        let report = lint(&program);
        kernels += 1;
        errors += report.error_count();
        warnings += report.warning_count();
        if regs_mode {
            println!("{label} {pre} {}", program.register_high_water());
            return;
        }
        report_line(&label, &program, &report, json);
        if analyze_mode {
            let (areport, facts) = analyze_with_facts(&program, &geom);
            let areport = areport.with_context(program.name(), schedule.paper_name());
            errors += areport.error_count();
            warnings += areport.warning_count();
            advisories += areport.advice_count();
            if !facts.converged {
                diverged += 1;
            }
            if json {
                println!("{}", areport.to_json());
            } else if !areport.diagnostics.is_empty() {
                for line in areport.to_text().lines().skip(1) {
                    println!("      {line}");
                }
            }
            if facts_mode && !json {
                for line in facts.to_text().lines() {
                    println!("      {line}");
                }
            }
        }
    };
    for (name, algo) in algorithms(algo_filter) {
        for &schedule in &schedules {
            for program in algo.kernels(schedule, &cfg) {
                // Schedule-independent kernels (init/apply) repeat across
                // schedules under the same name; lint each stream once.
                // The algorithm label stays in the key: variants like
                // pr-push emit different streams under shared names.
                let label = format!("{name}:{}", program.name());
                if !seen.insert(label.clone()) {
                    continue;
                }
                process(label, schedule, program);
            }
        }
    }
    if algo_filter.is_none() || algo_filter == Some("gcn") {
        let gcn = Gcn::new(8);
        for &schedule in &schedules {
            for program in gcn.kernels(schedule, &cfg) {
                let label = format!("gcn:{}", program.name());
                if !seen.insert(label.clone()) {
                    continue;
                }
                process(label, schedule, program);
            }
        }
    }
    if !json && !regs_mode {
        if analyze_mode {
            println!(
                "{kernels} kernel(s) linted+analyzed: {errors} error(s), {warnings} warning(s), \
                 {advisories} advisories"
            );
        } else {
            println!("{kernels} kernel(s) linted: {errors} error(s), {warnings} warning(s)");
        }
    }
    if diverged > 0 {
        eprintln!("{diverged} kernel(s) hit the fixpoint safety cap");
        return 1;
    }
    if errors > 0 {
        1
    } else {
        0
    }
}

/// Checks the seeded fixtures: each ill-formed program must trigger its
/// documented rule under `lint`, and each analyzer fixture its SW-L5xx
/// rule under `analyze` — a liveness check for the verifier itself.
/// Exits 0 when healthy, 1 when any fixture misses, matching the
/// `swprof --selftest` convention.
fn cmd_selftest(json: bool) -> i32 {
    let mut ok = true;
    let mut findings = 0usize;
    for (program, expected_rule) in fixtures::ill_formed() {
        let report = lint(&program);
        let hit = report
            .diagnostics
            .iter()
            .any(|d| d.rule.id() == expected_rule);
        findings += report.error_count();
        if json {
            println!("{}", report.to_json());
        } else if hit {
            println!(
                "ok    {:<28} triggers {expected_rule} as documented",
                program.name()
            );
        } else {
            println!(
                "MISS  {:<28} expected {expected_rule}, got:\n{}",
                program.name(),
                report.to_text()
            );
        }
        ok &= hit;
    }
    let geom = fixtures::analyzer_geom();
    for (program, expected_rule) in fixtures::analyzer_flagged() {
        let (report, _) = analyze_with_facts(&program, &geom);
        let hit = report
            .diagnostics
            .iter()
            .any(|d| d.rule.id() == expected_rule);
        findings += report.diagnostics.len();
        if json {
            println!("{}", report.to_json());
        } else if hit {
            println!(
                "ok    {:<28} triggers {expected_rule} as documented",
                program.name()
            );
        } else {
            println!(
                "MISS  {:<28} expected {expected_rule}, got:\n{}",
                program.name(),
                report.to_text()
            );
        }
        ok &= hit;
    }
    if !json {
        println!(
            "selftest: {} fixture(s), {findings} finding(s), verifier {}",
            fixtures::ill_formed().len() + fixtures::analyzer_flagged().len(),
            if ok { "healthy" } else { "BROKEN" }
        );
    }
    // Every fixture is seeded to trigger a specific rule; a miss means
    // the verifier went blind. Healthy exits 0, a regression exits 1 —
    // the same convention as `swprof --selftest`.
    if ok {
        0
    } else {
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--version" || a == "-V") {
        println!("swlint {}", sparseweaver::VERSION);
        return;
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let flags = parse_flags(&args);
    let code = if flags.contains_key("selftest") {
        cmd_selftest(flags.contains_key("json"))
    } else {
        cmd_lint(&flags)
    };
    exit(code)
}
