//! `swlint` — static verifier for SparseWeaver kernel IR.
//!
//! Compiles the built-in algorithm kernels (without touching a simulated
//! device) and runs the `sparseweaver-lint` CFG/dataflow verifier over
//! each: use-before-def, dead writes, unreachable code, divergence-stack
//! balance, barrier-under-divergence deadlocks, `tmc 0` wedges, and the
//! Weaver registration protocol. Rule catalog: `docs/lint-rules.md`.
//!
//! ```text
//! swlint                         # every algorithm x every schedule
//! swlint --algo bfs --schedule sw
//! swlint --json                  # one LintReport JSON object per line
//! swlint --selftest              # verify the seeded ill-formed fixtures
//! swlint --version
//! ```
//!
//! Exit status: 0 when every kernel is clean, 1 when any error-severity
//! finding fires (including `--selftest`, whose fixtures must all fire),
//! 2 on usage errors.

use std::collections::{HashMap, HashSet};
use std::process::exit;

use sparseweaver::core::algorithms::{
    Algorithm, Bfs, ConnectedComponents, Gcn, PageRank, Spmv, Sssp,
};
use sparseweaver::core::Schedule;
use sparseweaver::graph::Direction;
use sparseweaver::isa::Program;
use sparseweaver::lint::{fixtures, lint, LintReport};
use sparseweaver::sim::GpuConfig;

fn usage() -> ! {
    eprintln!(
        "swlint — SparseWeaver kernel-IR static verifier

USAGE:
  swlint [--algo ALGO] [--schedule S] [--config vortex|eval|small|8core|regfile]
         [--regalloc on|off] [--regs] [--json]
  swlint --selftest [--json]
  swlint --version

  ALGO:  pr | pr-push | bfs | sssp | sssp-wl | cc | spmv | gcn   (default: all)
  S:     svm | em | wm | cm | sw | eghw                          (default: all)

  --json      one LintReport JSON object per kernel, one per line
  --regalloc  on|off: run liveness-based register allocation before
              linting, as the runtime does before launching (default on)
  --regs      print one `LABEL PRE POST` register-high-water line per
              kernel instead of lint reports (drives the CI register-
              pressure budget); the exit code still reflects lint errors
  --selftest  lint the seeded ill-formed programs and check that each
              triggers exactly its documented rule (exits 1: they are
              ill-formed by construction)

Rule catalog: docs/lint-rules.md (SW-L1xx dataflow, SW-L2xx divergence
stack, SW-L3xx barrier/mask, SW-L4xx Weaver protocol)."
    );
    exit(2)
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(name) = args[i].strip_prefix("--") else {
            eprintln!("unexpected argument `{}`", args[i]);
            usage()
        };
        let next_is_value = args
            .get(i + 1)
            .map(|n| !n.starts_with("--"))
            .unwrap_or(false);
        if next_is_value {
            flags.insert(name.to_string(), args[i + 1].clone());
            i += 2;
        } else {
            flags.insert(name.to_string(), String::new());
            i += 1;
        }
    }
    for k in flags.keys() {
        if ![
            "algo", "schedule", "config", "json", "selftest", "regalloc", "regs",
        ]
        .contains(&k.as_str())
        {
            eprintln!("unknown flag `--{k}`");
            usage()
        }
    }
    flags
}

fn parse_schedules(flags: &HashMap<String, String>) -> Vec<Schedule> {
    match flags.get("schedule").map(String::as_str) {
        None => Schedule::ALL.to_vec(),
        Some("svm") | Some("S_vm") => vec![Schedule::Svm],
        Some("em") | Some("sem") | Some("S_em") => vec![Schedule::Sem],
        Some("wm") | Some("swm") | Some("S_wm") => vec![Schedule::Swm],
        Some("cm") | Some("scm") | Some("S_cm") => vec![Schedule::Scm],
        Some("sw") | Some("weaver") | Some("sparseweaver") => vec![Schedule::SparseWeaver],
        Some("eghw") => vec![Schedule::Eghw],
        Some(other) => {
            eprintln!("unknown schedule `{other}`");
            usage()
        }
    }
}

fn config_for(flags: &HashMap<String, String>) -> GpuConfig {
    match flags.get("config").map(String::as_str) {
        None | Some("eval") | Some("evaluation") => GpuConfig::evaluation_default(),
        Some("vortex") => GpuConfig::vortex_default(),
        Some("small") => GpuConfig::small_test(),
        Some("8core") => GpuConfig::eight_core(),
        Some("regfile") => GpuConfig::regfile_limited(),
        Some(other) => {
            eprintln!("unknown config `{other}`");
            usage()
        }
    }
}

/// Parses `--regalloc on|off` (default: on).
fn regalloc_flag(flags: &HashMap<String, String>) -> bool {
    match flags.get("regalloc").map(String::as_str) {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => {
            eprintln!("--regalloc expects on|off, got `{other}`");
            exit(2)
        }
    }
}

/// Applies register allocation when `regalloc` is on, mirroring what the
/// runtime launches; identity when the allocator bails out.
fn maybe_allocate(program: Program, regalloc: bool) -> Program {
    if !regalloc {
        return program;
    }
    let result = sparseweaver::core::compiler::regalloc::allocate(&program);
    if result.applied {
        result.program
    } else {
        program
    }
}

/// The built-in algorithms, keyed the way `--algo` selects them. Kernel
/// parameters (source vertex, iteration counts) do not affect the emitted
/// instruction stream, so fixed placeholders suffice.
fn algorithms(selected: Option<&str>) -> Vec<(&'static str, Box<dyn Algorithm>)> {
    let all: Vec<(&'static str, Box<dyn Algorithm>)> = vec![
        ("pr", Box::new(PageRank::new(1))),
        (
            "pr-push",
            Box::new(PageRank::new(1).with_direction(Direction::Push)),
        ),
        ("bfs", Box::new(Bfs::new(0))),
        ("sssp", Box::new(Sssp::new(0))),
        ("sssp-wl", Box::new(Sssp::new(0).with_worklist(true))),
        ("cc", Box::new(ConnectedComponents::new())),
        ("spmv", Box::new(Spmv::new())),
    ];
    match selected {
        None => all,
        Some(name) => {
            let found: Vec<_> = all.into_iter().filter(|(n, _)| *n == name).collect();
            if found.is_empty() && name != "gcn" {
                eprintln!("unknown algorithm `{name}` (pr | pr-push | bfs | sssp | sssp-wl | cc | spmv | gcn)");
                usage()
            }
            found
        }
    }
}

fn report_line(label: &str, program: &Program, report: &LintReport, json: bool) {
    if json {
        println!("{}", report.to_json());
        return;
    }
    if report.is_clean() && report.warning_count() == 0 {
        println!("ok    {label:<28} {:>4} instrs", program.len());
    } else {
        println!(
            "FAIL  {label:<28} {:>4} instrs  {} error(s), {} warning(s)",
            program.len(),
            report.error_count(),
            report.warning_count()
        );
        for line in report.to_text().lines() {
            println!("      {line}");
        }
    }
}

fn cmd_lint(flags: &HashMap<String, String>) -> i32 {
    let json = flags.contains_key("json");
    let regalloc = regalloc_flag(flags);
    let regs_mode = flags.contains_key("regs");
    let cfg = config_for(flags);
    let schedules = parse_schedules(flags);
    let algo_filter = flags.get("algo").map(String::as_str);
    let mut seen: HashSet<String> = HashSet::new();
    let mut kernels = 0usize;
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut process = |label: String, program: Program| {
        let pre = program.register_high_water();
        let program = maybe_allocate(program, regalloc);
        let report = lint(&program);
        kernels += 1;
        errors += report.error_count();
        warnings += report.warning_count();
        if regs_mode {
            println!("{label} {pre} {}", program.register_high_water());
        } else {
            report_line(&label, &program, &report, json);
        }
    };
    for (name, algo) in algorithms(algo_filter) {
        for &schedule in &schedules {
            for program in algo.kernels(schedule, &cfg) {
                // Schedule-independent kernels (init/apply) repeat across
                // schedules under the same name; lint each stream once.
                // The algorithm label stays in the key: variants like
                // pr-push emit different streams under shared names.
                let label = format!("{name}:{}", program.name());
                if !seen.insert(label.clone()) {
                    continue;
                }
                process(label, program);
            }
        }
    }
    if algo_filter.is_none() || algo_filter == Some("gcn") {
        let gcn = Gcn::new(8);
        for &schedule in &schedules {
            for program in gcn.kernels(schedule, &cfg) {
                let label = format!("gcn:{}", program.name());
                if !seen.insert(label.clone()) {
                    continue;
                }
                process(label, program);
            }
        }
    }
    if !json && !regs_mode {
        println!("{kernels} kernel(s) linted: {errors} error(s), {warnings} warning(s)");
    }
    if errors > 0 {
        1
    } else {
        0
    }
}

/// Lints the seeded ill-formed programs and checks each triggers exactly
/// its documented rule — a liveness check for the verifier itself.
fn cmd_selftest(json: bool) -> i32 {
    let mut ok = true;
    let mut findings = 0usize;
    for (program, expected_rule) in fixtures::ill_formed() {
        let report = lint(&program);
        let hit = report
            .diagnostics
            .iter()
            .any(|d| d.rule.id() == expected_rule);
        findings += report.error_count();
        if json {
            println!("{}", report.to_json());
        } else if hit {
            println!(
                "ok    {:<28} triggers {expected_rule} as documented",
                program.name()
            );
        } else {
            println!(
                "MISS  {:<28} expected {expected_rule}, got:\n{}",
                program.name(),
                report.to_text()
            );
        }
        ok &= hit;
    }
    if !json {
        println!(
            "selftest: {} fixture(s), {findings} error finding(s), verifier {}",
            fixtures::ill_formed().len(),
            if ok { "healthy" } else { "BROKEN" }
        );
    }
    // The fixtures are ill-formed by construction: a clean exit here would
    // mean the verifier went blind, so any outcome with findings exits 1
    // and a miss (verifier regression) exits 2.
    if !ok {
        2
    } else {
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--version" || a == "-V") {
        println!("swlint {}", sparseweaver::VERSION);
        return;
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let flags = parse_flags(&args);
    let code = if flags.contains_key("selftest") {
        cmd_selftest(flags.contains_key("json"))
    } else {
        cmd_lint(&flags)
    };
    exit(code)
}
