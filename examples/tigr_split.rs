//! Composing SparseWeaver with static vertex splitting (Tigr/CR2 style).
//!
//! Section III-D: SparseWeaver "can accommodate non-consecutive labeling
//! by splitting vertices and registering split vertices as separate
//! entries". This example runs a degree-count gather over a supernode
//! graph three ways — naive `S_vm`, `S_vm` over a degree-capped split,
//! and SparseWeaver over the original — to show that the hardware gets
//! the balance that splitting buys statically, without the preprocessing.
//!
//! ```text
//! cargo run --release --example tigr_split
//! ```

use sparseweaver::core::compiler::{build_gather_kernel, EdgeRegs, GatherOps, VirtualizedOps};
use sparseweaver::core::runtime::{args, Runtime};
use sparseweaver::core::{Schedule, Session};
use sparseweaver::graph::transform::split_vertices;
use sparseweaver::graph::{generators, Csr, Direction};
use sparseweaver::isa::{Asm, AtomOp, Reg};
use sparseweaver::sim::{Gpu, GpuConfig};

struct CountOps;

impl GatherOps for CountOps {
    fn emit_pro(&self, a: &mut Asm) -> Vec<Reg> {
        let count = a.reg();
        a.ldarg(count, args::ALGO0 + 1);
        vec![count]
    }

    fn emit_compute(&self, a: &mut Asm, pro: &[Reg], e: &EdgeRegs, _x: bool) {
        let addr = a.reg();
        let one = a.reg();
        let old = a.reg();
        a.slli(addr, e.base, 3);
        a.add(addr, addr, pro[0]);
        a.li(one, 1);
        a.atom(AtomOp::Add, old, addr, one);
        a.free(old);
        a.free(one);
        a.free(addr);
    }
}

fn run(
    topology: &Csr,
    real_of: &[u32],
    num_real: usize,
    schedule: Schedule,
    expect: &[u64],
) -> u64 {
    let session = Session::new(GpuConfig::vortex_default());
    let gpu = Gpu::new(session.config_for(schedule));
    let mut rt = Runtime::new(gpu, topology, Direction::Push, schedule).expect("runtime");
    let map = rt.upload_u32(real_of);
    let count = rt.alloc_u64(num_real, 0);
    let ops = VirtualizedOps::new(&CountOps, args::ALGO0);
    let cfg = *rt.gpu().config();
    let kernel = build_gather_kernel("count", &ops, schedule, &cfg);
    rt.launch(&kernel, &[map, count]).expect("launch");
    let got = rt.read_u64_vec(count, num_real);
    assert_eq!(got, expect, "wrong degree counts");
    rt.total_stats().cycles
}

fn main() {
    // A heavy-tailed graph with a few supernodes.
    let g = generators::powerlaw(3_000, 40_000, 2.0, 77);
    let nv = g.num_vertices();
    println!(
        "graph: {} vertices, {} edges, max degree {}\n",
        nv,
        g.num_edges(),
        g.max_degree()
    );
    let expect: Vec<u64> = (0..nv as u32).map(|v| g.degree(v) as u64).collect();
    let identity: Vec<u32> = (0..nv as u32).collect();

    let naive = run(&g, &identity, nv, Schedule::Svm, &expect);
    println!("S_vm, original topology:        {naive:>9} cycles");

    for cap in [64usize, 16, 4] {
        let vg = split_vertices(&g, cap);
        let cycles = run(&vg.topology, &vg.real_of, nv, Schedule::Svm, &expect);
        println!(
            "S_vm, split cap {cap:>3} ({:>5} virt): {cycles:>9} cycles   {:.2}x",
            vg.num_virtual(),
            naive as f64 / cycles as f64
        );
    }

    let sw = run(&g, &identity, nv, Schedule::SparseWeaver, &expect);
    println!(
        "SparseWeaver, original topology:{sw:>9} cycles   {:.2}x",
        naive as f64 / sw as f64
    );
    println!(
        "\nSplitting buys S_vm balance statically (at preprocessing cost);\n\
         SparseWeaver gets it dynamically from the hardware — and the two compose."
    );
}
