//! A microscope on the Weaver hardware itself: drive the Fig. 6 FSM and
//! the unit's timing model directly, without the full framework.
//!
//! Reproduces the paper's worked example — ST entries `(0,2,1)`,
//! `(2,10,2)`, `(4,30,5)` on a 4-lane warp — then demonstrates skip
//! signals and the latency-hiding property behind Fig. 13.
//!
//! ```text
//! cargo run --release --example weaver_microscope
//! ```

use sparseweaver::weaver::{SparseTable, StEntry, WeaverConfig, WeaverFsm, WeaverUnit};

fn main() {
    println!("=== Fig. 6 worked example ===");
    let mut st = SparseTable::new(4);
    st.register(
        0,
        StEntry {
            vid: 0,
            loc: 2,
            deg: 1,
        },
    );
    st.register(
        1,
        StEntry {
            vid: 2,
            loc: 10,
            deg: 2,
        },
    );
    st.register(
        2,
        StEntry {
            vid: 4,
            loc: 30,
            deg: 5,
        },
    );
    let mut fsm = WeaverFsm::new(4);
    fsm.load(st);

    let b1 = fsm.decode();
    println!(
        "OD 1: vids {:?}  eids {:?}  mask {:#06b}",
        b1.vids,
        b1.eids,
        b1.mask()
    );
    println!("      FSM path: {:?}", fsm.trace());
    let b2 = fsm.decode();
    println!(
        "OD 2: vids {:?}  eids {:?} (the degree-5 supernode spills)",
        b2.vids, b2.eids
    );
    let b3 = fsm.decode();
    println!("OD 3: exhausted = {} (empty work IDs)\n", b3.exhausted);

    println!("=== WEAVER_SKIP on a supernode ===");
    let mut st = SparseTable::new(2);
    st.register(
        0,
        StEntry {
            vid: 7,
            loc: 0,
            deg: 1000,
        },
    );
    st.register(
        1,
        StEntry {
            vid: 8,
            loc: 1000,
            deg: 1,
        },
    );
    let mut fsm = WeaverFsm::new(4);
    fsm.load(st);
    let first = fsm.decode();
    println!("before skip: vids {:?}", first.vids);
    fsm.skip(7); // BFS found vertex 7's parent: drop its 996 leftovers
    let after = fsm.decode();
    println!(
        "after  skip: vids {:?} (straight to vertex 8)\n",
        after.vids
    );

    println!("=== Latency hiding (the Fig. 13 flat line) ===");
    for lat in [10, 40, 160] {
        let cfg = WeaverConfig {
            table_latency: lat,
            ..WeaverConfig::default()
        };
        let mut unit = WeaverUnit::new(cfg, 8, 4);
        unit.reg(0, &[(0, 0, 0, 64), (1, 1, 64, 64)], 0)
            .expect("two records fit the ST");
        // Back-to-back decode requests from different warps: occupancy
        // (one table read per slot) serializes them, but the table READ
        // LATENCY only adds to each response's depth - it pipelines.
        let t0 = 100;
        let a = unit.dec_id(0, t0);
        let b = unit.dec_id(1, t0);
        println!(
            "table latency {lat:>3}: warp0 ready at {}, warp1 at {} (gap {})",
            a.ready_at,
            b.ready_at,
            b.ready_at - a.ready_at
        );
    }
    println!("\nThe inter-request gap is set by occupancy, not latency —");
    println!("with 32 warps in flight, the table latency vanishes (Fig. 13).");
}
