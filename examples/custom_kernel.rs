//! Writing a raw kernel against the simulator: the assembler, SIMT
//! divergence, warp votes, and the Weaver instructions with no framework
//! in between.
//!
//! The kernel histograms vertex degrees in parallel: registration feeds
//! the Weaver unit one `(vid, loc, deg)` record per vertex, and the
//! distribution loop counts one atomic increment per generated work item —
//! so the final histogram doubles as a proof that Weaver emitted every
//! edge exactly once.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use sparseweaver::graph::generators;
use sparseweaver::isa::{Asm, AtomOp, CsrKind, VoteOp, Width};
use sparseweaver::sim::{Gpu, GpuConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = generators::powerlaw(300, 2_400, 1.8, 5);
    let nv = graph.num_vertices() as u64;

    // One registration round per core suffices: vertices-per-core (50) fits
    // both the thread count and the 512-entry ST.
    let mut gpu = Gpu::new(GpuConfig::vortex_default());
    // Device layout: offsets, then a per-vertex counter array.
    let off_base = 0x1000u64;
    let count_base = 0x8000u64;
    gpu.mem_mut().grow_to(0x20000);
    gpu.mem_mut().write_u32_slice(off_base, graph.offsets());

    // --- the kernel ---------------------------------------------------
    let mut a = Asm::new("degree_histogram");
    let nv_reg = a.reg();
    let off = a.reg();
    let counts = a.reg();
    a.ldarg(nv_reg, 0);
    a.ldarg(off, 1);
    a.ldarg(counts, 2);

    // Registration: core-local strided loop over vertices.
    let ctid = a.reg();
    let cid = a.reg();
    let ncores = a.reg();
    let tpc = a.reg();
    a.csr(ctid, CsrKind::CoreTid);
    a.csr(cid, CsrKind::CoreId);
    a.csr(ncores, CsrKind::NumCores);
    a.csr(tpc, CsrKind::ThreadsPerCore);
    let per = a.reg();
    a.add(per, nv_reg, ncores);
    a.addi(per, per, -1);
    a.divu(per, per, ncores);
    let v = a.reg();
    a.mul(v, cid, per);
    a.add(v, v, ctid);
    let hi = a.reg();
    a.mul(hi, cid, per);
    a.add(hi, hi, per);
    a.minu(hi, hi, nv_reg);
    let valid = a.reg();
    a.sltu(valid, v, hi);
    a.if_nonzero(valid, |a| {
        let addr = a.reg();
        let start = a.reg();
        let end = a.reg();
        a.slli(addr, v, 2);
        a.add(addr, addr, off);
        a.ldg(start, addr, 0, Width::B4);
        a.ldg(end, addr, 4, Width::B4);
        a.sub(end, end, start);
        a.weaver_reg(v, start, end);
        a.free(addr);
        a.free(start);
        a.free(end);
    });
    a.bar();

    // Distribution: count every work item against its base vertex.
    let top = a.new_label();
    let done = a.new_label();
    let wv = a.reg();
    let has = a.reg();
    let any = a.reg();
    a.bind(top);
    a.weaver_dec_id(wv);
    a.snei(has, wv, -1);
    a.vote(VoteOp::Any, any, has);
    a.beq(any, a.zero(), done);
    a.if_nonzero(has, |a| {
        let addr = a.reg();
        let one = a.reg();
        let old = a.reg();
        a.slli(addr, wv, 3);
        a.add(addr, addr, counts);
        a.li(one, 1);
        a.atom(AtomOp::Add, old, addr, one);
        a.free(old);
        a.free(one);
        a.free(addr);
    });
    a.jmp(top);
    a.bind(done);
    a.halt();
    let program = a.finish();
    // -------------------------------------------------------------------

    println!(
        "kernel `{}`: {} instructions, {} Weaver instructions\n",
        program.name(),
        program.len(),
        program.weaver_instr_count()
    );
    let stats = gpu.launch(&program, &[nv, off_base, count_base])?;
    println!(
        "ran in {} cycles ({} warp-instructions, IPC {:.2})",
        stats.cycles,
        stats.instructions,
        stats.ipc()
    );

    // Every vertex's counter must equal its degree: Weaver emitted each
    // edge exactly once.
    for vtx in 0..nv {
        let got = gpu.mem().read(count_base + 8 * vtx, 8);
        let want = graph.degree(vtx as u32) as u64;
        assert_eq!(got, want, "vertex {vtx}");
    }
    println!("verified: every edge distributed exactly once across {nv} vertices");
    Ok(())
}
