//! Beyond graphs: GPU hash-table lookup through SparseWeaver
//! (Discussion VII-A, Algorithm 1).
//!
//! A bucketed hash table is CSR in disguise: the offset array points at
//! bucket ranges, and probing a bucket walks a variable-length slot list —
//! a sparse operation with the same imbalance as edge gathering. Skewed
//! bucket occupancy (bad hash, adversarial keys) makes vertex-mapped
//! probing slow; SparseWeaver distributes the probes densely, and
//! `WEAVER_SKIP` stops scanning a bucket as soon as its key is found.
//!
//! ```text
//! cargo run --release --example hash_lookup
//! ```

use sparseweaver::core::compiler::{EdgeRegs, GatherOps};
use sparseweaver::core::prelude::*;
use sparseweaver::core::runtime::args;
use sparseweaver::graph::{Csr, VertexId};
use sparseweaver::isa::{Asm, Reg, Width};

/// Probe UDF: for bucket `base` and slot `eid`,
/// `if keys[eid] == query[base] { result[base] = values[eid]; found }`.
struct HashProbe;

const A_KEYS: u8 = args::ALGO0;
const A_VALUES: u8 = args::ALGO0 + 1;
const A_QUERY: u8 = args::ALGO0 + 2;
const A_RESULT: u8 = args::ALGO0 + 3;

impl GatherOps for HashProbe {
    fn has_early_exit(&self) -> bool {
        true
    }

    fn emit_pro(&self, a: &mut Asm) -> Vec<Reg> {
        let regs: Vec<Reg> = (0..4).map(|_| a.reg()).collect();
        a.ldarg(regs[0], A_KEYS);
        a.ldarg(regs[1], A_VALUES);
        a.ldarg(regs[2], A_QUERY);
        a.ldarg(regs[3], A_RESULT);
        regs
    }

    fn emit_satisfied(&self, a: &mut Asm, pro: &[Reg], base: Reg, out: Reg) {
        // Satisfied once result[base] is set (results start at u64::MAX).
        let addr = a.reg();
        a.slli(addr, base, 3);
        a.add(addr, addr, pro[3]);
        a.ldg(out, addr, 0, Width::B8);
        a.snei(out, out, -1);
        a.free(addr);
    }

    fn emit_compute(&self, a: &mut Asm, pro: &[Reg], e: &EdgeRegs, _exclusive: bool) {
        let key = a.reg();
        let q = a.reg();
        let addr = a.reg();
        a.slli(addr, e.eid, 3);
        a.add(addr, addr, pro[0]);
        a.ldg(key, addr, 0, Width::B8);
        a.slli(addr, e.base, 3);
        a.add(addr, addr, pro[2]);
        a.ldg(q, addr, 0, Width::B8);
        let hit = a.reg();
        a.seq(hit, key, q);
        a.if_nonzero(hit, |a| {
            let val = a.reg();
            let raddr = a.reg();
            a.slli(raddr, e.eid, 3);
            a.add(raddr, raddr, pro[1]);
            a.ldg(val, raddr, 0, Width::B8);
            a.slli(raddr, e.base, 3);
            a.add(raddr, raddr, pro[3]);
            a.stg(val, raddr, 0, Width::B8);
            a.free(raddr);
            a.free(val);
            if let Some(sat) = e.satisfied {
                a.li(sat, 1);
            }
        });
        a.free(hit);
        a.free(addr);
        a.free(q);
        a.free(key);
    }
}

fn main() -> Result<(), FrameworkError> {
    // Build a deliberately skewed table: 512 buckets, one super-bucket.
    let buckets = 512usize;
    let mut slots: Vec<(VertexId, VertexId)> = Vec::new();
    let mut keys: Vec<u64> = Vec::new();
    let mut values: Vec<u64> = Vec::new();
    let mut next_key = 1u64;
    for b in 0..buckets as u32 {
        let occupancy = if b == 7 { 900 } else { 1 + (b as usize % 4) };
        for _ in 0..occupancy {
            slots.push((b, b)); // CSR disguise: "edge" = one slot in bucket b
            keys.push(next_key);
            values.push(next_key * 10);
            next_key += 1;
        }
    }
    // The table layout follows CSR edge order (bucket-sorted).
    let table = Csr::from_edges(buckets, &slots);
    println!(
        "hash table: {buckets} buckets, {} slots, largest bucket {}",
        table.num_edges(),
        table.max_degree()
    );

    // Query: the LAST key of each bucket (worst case for early exit).
    let mut query = vec![0u64; buckets];
    for b in 0..buckets as u32 {
        let range = table.offsets()[b as usize] as usize..table.offsets()[b as usize + 1] as usize;
        query[b as usize] = keys[range.end - 1];
    }

    let session = Session::new(GpuConfig::vortex_default());
    for schedule in [Schedule::Svm, Schedule::SparseWeaver] {
        let mut rt = session.runtime(&table, Direction::Push, schedule)?;
        let keys_dev = {
            let base = rt.alloc(8 * keys.len() as u64);
            for (i, &k) in keys.iter().enumerate() {
                rt.write_u64(base + 8 * i as u64, k);
            }
            base
        };
        let values_dev = {
            let base = rt.alloc(8 * values.len() as u64);
            for (i, &v) in values.iter().enumerate() {
                rt.write_u64(base + 8 * i as u64, v);
            }
            base
        };
        let query_dev = {
            let base = rt.alloc(8 * buckets as u64);
            for (i, &q) in query.iter().enumerate() {
                rt.write_u64(base + 8 * i as u64, q);
            }
            base
        };
        let result_dev = rt.alloc_u64(buckets, u64::MAX);

        let kernel = sparseweaver::core::compiler::build_gather_kernel(
            "hash_lookup",
            &HashProbe,
            schedule,
            rt.gpu().config(),
        );
        let stats = rt.launch(&kernel, &[keys_dev, values_dev, query_dev, result_dev])?;
        let results = rt.read_u64_vec(result_dev, buckets);
        for b in 0..buckets {
            assert_eq!(results[b], query[b] * 10, "bucket {b} lookup failed");
        }
        println!(
            "{:<13} {:>10} cycles  (all {buckets} lookups correct)",
            schedule.to_string(),
            stats.cycles
        );
    }
    Ok(())
}
