//! Quickstart: run PageRank on a skewed graph under every scheduling
//! scheme and watch SparseWeaver erase the warp-imbalance penalty.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sparseweaver::core::prelude::*;
use sparseweaver::graph::{generators, DegreeStats};

fn main() -> Result<(), FrameworkError> {
    // A scale-free graph: a few hub vertices hold most of the edges, so
    // lockstep warps under vertex mapping idle while one lane walks a hub.
    let graph = generators::powerlaw(2_000, 30_000, 1.9, 42);
    let stats = DegreeStats::of(&graph);
    println!(
        "graph: {} vertices, {} edges, mean degree {:.1}, max degree {} (cv {:.2})\n",
        graph.num_vertices(),
        graph.num_edges(),
        stats.mean,
        stats.max,
        stats.cv,
    );

    // The paper's machine: 6 cores (2 sockets x 3), 32 warps/core,
    // 32 threads/warp, 64KB L1 + 1MB L2 (halved L1 when Weaver's tables
    // occupy it).
    let mut session = Session::new(GpuConfig::vortex_default());
    let pagerank = PageRank::new(5);

    let reference = {
        use sparseweaver::core::algorithms::Algorithm;
        pagerank.reference(&graph)
    };

    let baseline = session.run(&graph, &pagerank, Schedule::Svm)?;
    println!("{:<13} {:>12} cycles", "S_vm", baseline.cycles);
    for schedule in [
        Schedule::Sem,
        Schedule::Swm,
        Schedule::Scm,
        Schedule::SparseWeaver,
    ] {
        let report = session.run(&graph, &pagerank, schedule)?;
        assert!(
            report.output.approx_eq(&reference, 1e-9),
            "{schedule} diverged from the host reference"
        );
        println!(
            "{:<13} {:>12} cycles   {:.2}x over S_vm",
            schedule.to_string(),
            report.cycles,
            report.speedup_over(&baseline),
        );
    }
    println!("\nAll schedules produced the reference ranks (checked to 1e-9).");
    Ok(())
}
