//! The GCN case study (Section V-I): a graph-convolution layer's
//! GraphSum + SpMM operators under the weight-parallel `S_vm` baseline vs
//! SparseWeaver's edge-parallel distribution.
//!
//! ```text
//! cargo run --release --example gcn_layer
//! ```

use sparseweaver::core::algorithms::Gcn;
use sparseweaver::core::prelude::*;
use sparseweaver::graph::generators;

fn main() -> Result<(), FrameworkError> {
    let graph = generators::powerlaw(800, 9_000, 1.8, 21);
    println!(
        "graph: {} vertices, {} edges\n",
        graph.num_vertices(),
        graph.num_edges()
    );
    let session = Session::new(GpuConfig::vortex_default());

    println!(
        "{:>3}  {:>12} {:>12}  {:>12} {:>12}  {:>8}",
        "K", "base gsum", "base spmm", "SW gsum", "SW spmm", "speedup"
    );
    for k in [1usize, 2, 4, 8, 16] {
        let gcn = Gcn::new(k);
        // Weight-parallel baseline: thread per (vertex, weight dim), no
        // atomics, but each thread re-walks the neighbor list.
        let mut rt = session.runtime(&graph, Direction::Pull, Schedule::Svm)?;
        let base = gcn.run(&mut rt, true)?;
        // SparseWeaver: edges distributed densely; each work item loops
        // the weight dimension with atomic adds.
        let mut rt = session.runtime(&graph, Direction::Pull, Schedule::SparseWeaver)?;
        let sw = gcn.run(&mut rt, false)?;

        let max_diff = base
            .output
            .iter()
            .zip(&sw.output)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_diff < 1e-6, "outputs diverged by {max_diff}");

        println!(
            "{:>3}  {:>12} {:>12}  {:>12} {:>12}  {:>7.2}x",
            k,
            base.graphsum_cycles,
            base.spmm_cycles,
            sw.graphsum_cycles,
            sw.spmm_cycles,
            base.total_cycles as f64 / sw.total_cycles.max(1) as f64,
        );
    }
    println!("\n(outputs verified identical between both strategies)");
    Ok(())
}
