//! Differential profiling: BFS under `SparseWeaver` vs `S_wm`, compared
//! the way `swprof diff` does it — programmatically.
//!
//! Runs the same BFS on the same power-law graph under both schedules
//! with the latency profiler attached, renders each run's deterministic
//! `profile.json` artifact, and prints a swprof-style differential table
//! of the stall composition, latency quantiles, and load imbalance. This
//! is the paper's Fig. 4 story in one program: the Weaver schedule trades
//! scheduling-overhead cycles (and warp imbalance) for memory/Weaver
//! stalls, and comes out far ahead on total cycles.
//!
//! ```text
//! cargo run --release --example profile_weaver_vs_swm
//! ```

use sparseweaver::core::prelude::*;
use sparseweaver::core::profile;
use sparseweaver::graph::generators;
use sparseweaver::trace::json;

fn main() -> Result<(), FrameworkError> {
    let graph =
        generators::with_random_weights(&generators::powerlaw(600, 6000, 1.9, 11), 32, 0xC11);
    let source = (0..graph.num_vertices() as u32)
        .max_by_key(|&v| graph.degree(v))
        .unwrap_or(0);
    let bfs = Bfs::new(source);
    let cfg = GpuConfig::small_test();
    println!(
        "BFS from vertex {source} on a power-law graph: {} vertices, {} edges (max degree {})\n",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    // One profiled run per schedule; the artifact is rendered exactly as
    // `swsim run --profile-out` would write it.
    let artifact_for = |schedule: Schedule| -> Result<String, FrameworkError> {
        let mut session = Session::new(cfg);
        session.profile = true;
        let report = session.run(&graph, &bfs, schedule)?;
        println!(
            "  {:<13} {:>10} cycles  {:>9} instrs  ipc {:.2}",
            schedule.to_string(),
            report.cycles,
            report.stats.instructions,
            report.stats.ipc()
        );
        Ok(profile::render(&report, &cfg, &graph))
    };
    let baseline = artifact_for(Schedule::Swm)?;
    let candidate = artifact_for(Schedule::SparseWeaver)?;

    let a = json::parse(&baseline).expect("artifact is valid JSON");
    let b = json::parse(&candidate).expect("artifact is valid JSON");
    for issue in profile::comparability_issues(&a, &b) {
        println!("warning: {issue}");
    }

    // The swprof-style table, restricted to the metrics that tell the
    // Fig. 4 story: where the issue slots went, how long memory and the
    // Weaver unit kept warps waiting, and how evenly the work spread.
    let interesting = |name: &str| {
        name.starts_with("totals.")
            || name.ends_with(".p50")
            || name.ends_with(".p99")
            || name.ends_with(".imbalance_permille")
    };
    println!(
        "\n{:<44} {:>12} {:>12} {:>9}",
        "metric", "S_wm", "SparseWeaver", "change"
    );
    let mut regressions = 0usize;
    let mut improvements = 0usize;
    for d in profile::diff(&a, &b) {
        let (Some(av), Some(bv)) = (d.a, d.b) else {
            continue;
        };
        if !interesting(&d.name) || av == bv {
            continue;
        }
        let marker = if profile::lower_is_better(&d.name) {
            if bv > av {
                regressions += 1;
                "  worse"
            } else {
                improvements += 1;
                "  better"
            }
        } else {
            ""
        };
        let pct = d
            .pct()
            .map(|p| format!("{p:>+8.1}%"))
            .unwrap_or_else(|| "     new".into());
        println!("{:<44} {:>12} {:>12} {pct}{marker}", d.name, av, bv);
    }
    println!(
        "\n{improvements} metric(s) better, {regressions} worse under SparseWeaver: \
         the Weaver schedule buys its cycle win by moving wait time into \
         the memory/Weaver stall categories while erasing warp imbalance."
    );
    Ok(())
}
