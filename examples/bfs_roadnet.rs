//! BFS on a road-network-style graph, with the `WEAVER_SKIP` early-exit
//! path in action.
//!
//! Road networks are the paper's *anti*-skew datasets: nearly uniform tiny
//! degrees, so scheduling overhead — not imbalance — dominates, and the
//! gap between schemes narrows. This example prints distances and the
//! frontier profile, then compares schedule cycle counts.
//!
//! ```text
//! cargo run --release --example bfs_roadnet
//! ```

use sparseweaver::core::algorithms::Algorithm;
use sparseweaver::core::prelude::*;
use sparseweaver::graph::generators;

fn main() -> Result<(), FrameworkError> {
    let graph = generators::road_grid(64, 64, 0.55, 0.01, 7);
    println!(
        "road grid: {} vertices, {} edges (max degree {})",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    // Start from the highest-degree intersection.
    let source = (0..graph.num_vertices() as u32)
        .max_by_key(|&v| graph.degree(v))
        .unwrap_or(0);
    let bfs = Bfs::new(source);
    let reference = bfs.reference(&graph);
    let reachable = reference
        .as_u64()
        .iter()
        .filter(|&&d| d != u64::MAX)
        .count();
    let max_level = reference
        .as_u64()
        .iter()
        .filter(|&&d| d != u64::MAX)
        .max()
        .copied()
        .unwrap_or(0);
    println!("source {source}: {reachable} reachable vertices, eccentricity {max_level}\n");

    let mut session = Session::new(GpuConfig::vortex_default());
    let baseline = session.run(&graph, &bfs, Schedule::Svm)?;
    for schedule in [Schedule::Svm, Schedule::Sem, Schedule::SparseWeaver] {
        let report = session.run(&graph, &bfs, schedule)?;
        assert!(report.output.approx_eq(&reference, 0.0));
        println!(
            "{:<13} {:>10} cycles  {:>6} kernel launches  {:.2}x over S_vm",
            schedule.to_string(),
            report.cycles,
            report.stats.launches,
            report.speedup_over(&baseline),
        );
    }

    // Level histogram (the frontier wave over the grid).
    let mut hist = std::collections::BTreeMap::new();
    for &d in reference.as_u64() {
        if d != u64::MAX {
            *hist.entry(d).or_insert(0usize) += 1;
        }
    }
    println!("\nfrontier sizes by level (first 12 levels):");
    for (level, count) in hist.into_iter().take(12) {
        println!(
            "  level {level:>3}: {count:>5} {}",
            "#".repeat(count / 8 + 1)
        );
    }
    Ok(())
}
