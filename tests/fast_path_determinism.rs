//! The fast-path engine's determinism contract, end to end:
//!
//! - Idle-cycle fast-forward is a pure wall-clock optimisation — with it
//!   on or off, every algorithm produces bit-identical [`RunReport`]s
//!   (cycle counts, stats, per-kernel breakdowns, outputs) and, with
//!   profiling on, byte-identical `profile.json` artifacts.
//! - Parallel campaigns fold results in run-index order — any `--jobs`
//!   value renders byte-identical summary JSON and identical merged
//!   profiles.
//!
//! See `docs/performance.md` for the invariants behind both claims.

use sparseweaver::core::algorithms::{Algorithm, Bfs, ConnectedComponents, PageRank, Spmv, Sssp};
use sparseweaver::core::campaign::{run_campaign, CampaignConfig};
use sparseweaver::core::{profile, Schedule, Session};
use sparseweaver::fault::FaultSpec;
use sparseweaver::graph::generators;
use sparseweaver::sim::GpuConfig;

fn algorithms() -> Vec<Box<dyn Algorithm>> {
    vec![
        Box::new(Bfs::new(0)),
        Box::new(Sssp::new(0)),
        Box::new(PageRank::new(2)),
        Box::new(ConnectedComponents::new()),
        Box::new(Spmv::new()),
    ]
}

#[test]
fn fast_forward_reports_are_identical_for_every_algorithm() {
    let g = generators::with_random_weights(&generators::powerlaw(120, 720, 1.9, 5), 32, 1);
    let cfg = GpuConfig::small_test();
    for schedule in [Schedule::SparseWeaver, Schedule::Swm] {
        for algo in algorithms() {
            let run = |fast_forward: bool| {
                let mut s = Session::new(cfg);
                s.fast_forward = fast_forward;
                s.profile = true;
                s.run(&g, algo.as_ref(), schedule).expect("run")
            };
            let on = run(true);
            let off = run(false);
            let label = format!("{} under {:?}", algo.name(), schedule);
            assert_eq!(on.cycles, off.cycles, "{label}: cycle counts differ");
            assert_eq!(on.stats, off.stats, "{label}: stats differ");
            assert_eq!(
                on.per_kernel, off.per_kernel,
                "{label}: per-kernel breakdowns differ"
            );
            assert_eq!(on.output, off.output, "{label}: outputs differ");
            // The profiler observes the same issue/fill/response stream
            // whether idle cycles are simulated or skipped...
            assert_eq!(on.profile, off.profile, "{label}: profiles differ");
            // ...and the rendered artifact is byte-identical.
            assert_eq!(
                profile::render(&on, &cfg, &g),
                profile::render(&off, &cfg, &g),
                "{label}: rendered profile.json differs"
            );
        }
    }
}

#[test]
fn campaign_summary_json_is_byte_identical_across_jobs() {
    let g = generators::with_random_weights(&generators::uniform(24, 72, 7), 64, 0xC11);
    let cfg = GpuConfig::small_test();
    let spec = FaultSpec::parse("reg=0.002,mem=0.001,fetch=0.001,weaver-drop=0.02").unwrap();
    let run = |jobs: usize| {
        let mut campaign = CampaignConfig::new(spec, 2025, 16);
        campaign.jobs = jobs;
        campaign.profile = true;
        run_campaign(&cfg, &g, &Bfs::new(0), Schedule::SparseWeaver, &campaign).expect("campaign")
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial.summary.to_json(), parallel.summary.to_json());
    assert_eq!(serial.runs, parallel.runs);
    assert_eq!(serial.panics, parallel.panics);
    // The merged profile folds in run-index order: identical histograms
    // and issue counters for every worker count.
    assert_eq!(
        serial.profile, parallel.profile,
        "merged campaign profile depends on worker scheduling"
    );
    assert!(serial.profile.is_some());
}
