//! Golden tests for the observability layer: a small powerlaw run must
//! produce well-formed Chrome-trace JSON and a consistent metrics document,
//! and tracing must be invisible to the cycle model.

use sparseweaver::core::algorithms::{Bfs, PageRank};
use sparseweaver::core::{Schedule, Session};
use sparseweaver::sim::GpuConfig;
use sparseweaver::trace::{export, json, TraceConfig};

fn graph() -> sparseweaver::graph::Csr {
    sparseweaver::graph::generators::powerlaw(80, 500, 1.9, 42)
}

fn traced_session() -> Session {
    let mut s = Session::new(GpuConfig::small_test());
    s.trace = Some(TraceConfig {
        sample_every: 200,
        ..TraceConfig::default()
    });
    s
}

#[test]
fn powerlaw_run_emits_well_formed_chrome_trace() {
    let g = graph();
    let mut s = traced_session();
    let report = s
        .run(&g, &PageRank::new(2), Schedule::SparseWeaver)
        .unwrap();
    let trace = report.trace.expect("trace collected");
    let body = export::chrome_trace_json(&trace);

    let doc = json::parse(&body).expect("valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for e in events {
        let ph = e.get("ph").and_then(|v| v.as_str()).expect("ph present");
        assert!(matches!(ph, "M" | "X" | "i" | "C"), "unexpected phase {ph}");
        assert!(e.get("name").and_then(|v| v.as_str()).is_some());
        if ph == "M" {
            continue;
        }
        assert!(e.get("ts").and_then(|v| v.as_num()).is_some(), "ts missing");
        assert!(e.get("pid").and_then(|v| v.as_num()).is_some());
        assert!(e.get("tid").and_then(|v| v.as_num()).is_some());
        if ph == "X" {
            let dur = e.get("dur").and_then(|v| v.as_num()).expect("dur");
            assert!(dur >= 1.0, "complete events span at least a cycle");
        }
    }
    // The run's kernel spans and counter tracks made it into the timeline.
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(|v| v.as_str()))
        .collect();
    assert!(names.contains(&"stalls"));
    assert!(names.contains(&"phase_cycles"));
    assert!(names.contains(&"cache"));
    assert!(names.iter().any(|n| n.starts_with("weaver")));
}

#[test]
fn metrics_document_matches_the_run() {
    let g = graph();
    let mut s = traced_session();
    let report = s.run(&g, &Bfs::new(0), Schedule::SparseWeaver).unwrap();
    let stats = report.stats.clone();
    let trace = report.trace.expect("trace collected");
    let body = export::metrics_json(&trace);

    let doc = json::parse(&body).expect("valid JSON");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("sparseweaver-metrics-v1")
    );
    assert_eq!(
        doc.get("total_cycles").and_then(|v| v.as_num()),
        Some(report.cycles as f64)
    );
    let samples = doc
        .get("samples")
        .and_then(|v| v.as_arr())
        .expect("samples array");
    assert!(!samples.is_empty());
    // The series is monotone in cycle and in every cumulative counter.
    let mut prev_cycle = -1.0;
    let mut prev_instr = -1.0;
    for sample in samples {
        let cycle = sample.get("cycle").and_then(|v| v.as_num()).expect("cycle");
        assert!(cycle >= prev_cycle, "cycles must be non-decreasing");
        prev_cycle = cycle;
        let counters = sample.get("counters").expect("counters");
        let instr = counters
            .get("instructions")
            .and_then(|v| v.as_num())
            .expect("instructions");
        assert!(instr >= prev_instr, "counters are cumulative");
        prev_instr = instr;
        counters
            .get("stalls")
            .and_then(|v| v.get("memory"))
            .and_then(|v| v.as_num())
            .expect("stall breakdown present");
        counters
            .get("phase_cycles")
            .and_then(|v| v.get("Gather & Sum"))
            .and_then(|v| v.as_num())
            .expect("phase-cycle series present");
    }
    // The final sample equals the run totals.
    let last = samples.last().unwrap().get("counters").unwrap();
    assert_eq!(
        last.get("instructions").and_then(|v| v.as_num()),
        Some(stats.instructions as f64)
    );
    assert_eq!(
        last.get("cache")
            .and_then(|v| v.get("dram_accesses"))
            .and_then(|v| v.as_num()),
        Some(stats.mem.dram_accesses as f64)
    );
}

#[test]
fn tracing_leaves_kernel_stats_bit_identical() {
    let g = graph();
    // Svm exercises the plain-core path, SparseWeaver additionally the
    // Weaver-unit tracer hooks.
    for schedule in [Schedule::Svm, Schedule::SparseWeaver] {
        let mut plain = Session::new(GpuConfig::small_test());
        let mut traced = traced_session();
        let a = plain.run(&g, &PageRank::new(2), schedule).unwrap();
        let b = traced.run(&g, &PageRank::new(2), schedule).unwrap();
        assert_eq!(
            a.stats, b.stats,
            "{schedule:?} stats diverged under tracing"
        );
        assert_eq!(a.per_kernel, b.per_kernel);
        assert!(
            a.output.approx_eq(&b.output, 0.0),
            "outputs must match exactly"
        );
    }
}
