# regression fixture: line 4 has an unparsable destination id
0 1
1 2 7
2 banana
3 0
