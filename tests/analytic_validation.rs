//! Metrics-driven validation of the analytic warp-iteration model:
//! instead of checking end-to-end cycles only, run PageRank under
//! `S_vm` / `S_em` / `S_wm` with tracing on, extract the measured
//! edge-processing phase cycles from the rendered `metrics.json`, and
//! check [`analytic::expected_warp_iterations`] against the measurement.
//!
//! The model predicts *warp iterations* of the gather loop; the
//! simulator attributes every issued-instruction and stall cycle to the
//! warp's current phase. The "Gather & Sum" phase is exactly the
//! per-iteration body the model counts (work-ID calculation is
//! per-schedule overhead outside the model), so each predicted iteration
//! costs at least one attributed cycle there — the measurement bounds
//! the prediction from above, and on a skewed graph the model's ranking
//! of the schedules must agree with the measured ranking.

use sparseweaver::core::algorithms::PageRank;
use sparseweaver::core::{analytic, Schedule, Session};
use sparseweaver::graph::{generators, Csr};
use sparseweaver::sim::GpuConfig;
use sparseweaver::trace::{export, json, TraceConfig};

/// The phase label of the gather-loop body the model describes, as
/// rendered into `metrics.json` (`Phase::label`).
const GATHER_PHASE: &str = "Gather & Sum";

/// Runs PageRank traced and extracts the gather-loop body's cycle total
/// out of the run's `metrics.json` — the same artifact
/// `swsim --metrics-out` writes.
fn measured_gather_cycles(g: &Csr, cfg: GpuConfig, schedule: Schedule) -> u64 {
    let mut s = Session::new(cfg);
    s.trace = Some(TraceConfig::default());
    let report = s.run(g, &PageRank::new(1), schedule).expect("run");
    let metrics = export::metrics_json(report.trace.as_ref().expect("trace attached"));
    let v = json::parse(&metrics).expect("metrics.json parses");
    v.get("totals")
        .and_then(|t| t.get("phase_cycles"))
        .and_then(|p| p.get(GATHER_PHASE))
        .and_then(|x| x.as_num())
        .unwrap_or_else(|| panic!("phase {GATHER_PHASE:?} missing from metrics.json")) as u64
}

#[test]
fn warp_iteration_model_matches_measured_phase_cycles() {
    // Skewed enough that the schedules genuinely differ.
    let g = generators::powerlaw(200, 1600, 1.8, 9);
    let cfg = GpuConfig::small_test();
    let tpw = cfg.threads_per_warp;
    let block = cfg.threads_per_core();
    // PageRank gathers over incoming edges: the model sees the reverse view.
    let view = g.reverse();

    let schedules = [Schedule::Svm, Schedule::Sem, Schedule::Swm];
    let predicted: Vec<u64> = schedules
        .iter()
        .map(|&s| analytic::expected_warp_iterations(&view, s, tpw, block))
        .collect();
    let measured: Vec<u64> = schedules
        .iter()
        .map(|&s| measured_gather_cycles(&g, cfg, s))
        .collect();

    for (i, &s) in schedules.iter().enumerate() {
        // Phase attribution must actually reach the gather loop.
        assert!(measured[i] > 0, "{s:?}: no gather-phase cycles measured");
        // Every predicted warp iteration costs at least one attributed
        // cycle, so the measurement bounds the model from above.
        assert!(
            measured[i] >= predicted[i],
            "{s:?}: measured gather cycles {} below predicted iterations {}",
            measured[i],
            predicted[i]
        );
    }

    // Ranking agreement: wherever the model separates two schedules
    // decisively (>= 1.5x), the measured gather cycles must order the
    // same way.
    for i in 0..schedules.len() {
        for j in 0..schedules.len() {
            if predicted[i] as f64 >= 1.5 * predicted[j] as f64 {
                assert!(
                    measured[i] > measured[j],
                    "model ranks {:?} ({}) decisively above {:?} ({}), but measured {} <= {}",
                    schedules[i],
                    predicted[i],
                    schedules[j],
                    predicted[j],
                    measured[i],
                    measured[j]
                );
            }
        }
    }
}
