//! Property-based cross-schedule oracle: for *arbitrary* random graphs,
//! every scheduling scheme must distribute every edge exactly once.
//!
//! This complements `schedule_equivalence.rs` (fixed graph classes, real
//! algorithms) with randomized topology over a minimal counting gather,
//! so shrinking produces small counterexamples when a template breaks.

use proptest::prelude::*;
use sparseweaver::core::compiler::{build_gather_kernel, EdgeRegs, GatherOps};
use sparseweaver::core::runtime::{args, Runtime};
use sparseweaver::core::{Schedule, Session};
use sparseweaver::graph::{Csr, Direction};
use sparseweaver::isa::{Asm, AtomOp, Reg};
use sparseweaver::sim::Gpu;

struct CountOps;

impl GatherOps for CountOps {
    fn emit_pro(&self, a: &mut Asm) -> Vec<Reg> {
        let count = a.reg();
        a.ldarg(count, args::ALGO0);
        vec![count]
    }

    fn emit_compute(&self, a: &mut Asm, pro: &[Reg], e: &EdgeRegs, _x: bool) {
        let addr = a.reg();
        let one = a.reg();
        let old = a.reg();
        a.slli(addr, e.base, 3);
        a.add(addr, addr, pro[0]);
        a.li(one, 1);
        a.atom(AtomOp::Add, old, addr, one);
        a.free(old);
        a.free(one);
        a.free(addr);
    }
}

fn random_graph() -> impl Strategy<Value = Csr> {
    (2usize..40).prop_flat_map(|n| {
        prop::collection::vec((0u32..n as u32, 0u32..n as u32), 0..150)
            .prop_map(move |edges| Csr::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every schedule counts each vertex's out-degree exactly once on
    /// arbitrary topologies (multi-edges included).
    #[test]
    fn every_schedule_distributes_each_edge_once(g in random_graph()) {
        for schedule in Schedule::ALL {
            let session = Session::new(sparseweaver::sim::GpuConfig::small_test());
            let gpu = Gpu::new(session.config_for(schedule));
            let mut rt = Runtime::new(gpu, &g, Direction::Push, schedule)
                .expect("runtime");
            let count = rt.alloc_u64(g.num_vertices(), 0);
            let cfg = *rt.gpu().config();
            let k = build_gather_kernel("pcount", &CountOps, schedule, &cfg);
            rt.launch(&k, &[count]).expect("launch");
            let got = rt.read_u64_vec(count, g.num_vertices());
            for (v, &c) in got.iter().enumerate() {
                prop_assert_eq!(
                    c,
                    g.degree(v as u32) as u64,
                    "{} vertex {}",
                    schedule,
                    v
                );
            }
        }
    }

    /// The pull view distributes in-degrees symmetrically.
    #[test]
    fn pull_view_counts_in_degrees(g in random_graph()) {
        let rev = g.reverse();
        for schedule in [Schedule::Svm, Schedule::SparseWeaver] {
            let session = Session::new(sparseweaver::sim::GpuConfig::small_test());
            let gpu = Gpu::new(session.config_for(schedule));
            let mut rt = Runtime::new(gpu, &g, Direction::Pull, schedule)
                .expect("runtime");
            let count = rt.alloc_u64(g.num_vertices(), 0);
            let cfg = *rt.gpu().config();
            let k = build_gather_kernel("pcount", &CountOps, schedule, &cfg);
            rt.launch(&k, &[count]).expect("launch");
            let got = rt.read_u64_vec(count, g.num_vertices());
            for (v, &c) in got.iter().enumerate() {
                prop_assert_eq!(c, rev.degree(v as u32) as u64, "vertex {}", v);
            }
        }
    }
}
