//! Property tests for the robustness layer: decode totality under
//! arbitrary corruption, campaign classification totality, and
//! campaign determinism.
//!
//! The machine model's contract is *typed errors, never panics*: a
//! corrupted instruction word is an [`IllegalInstruction`] or executes
//! as the mutated instruction; a corrupted run lands in exactly one of
//! the four campaign classes (masked / SDC / detected-crash / hang).
//! See `docs/robustness.md`.

use proptest::prelude::*;
use sparseweaver::core::algorithms::Bfs;
use sparseweaver::core::campaign::{run_campaign, CampaignConfig};
use sparseweaver::core::Schedule;
use sparseweaver::fault::FaultSpec;
use sparseweaver::graph::generators;
use sparseweaver::isa::encode::{decode_instr, decode_weaver, encode_instr};
use sparseweaver::sim::GpuConfig;

/// A fast machine for hang-prone property runs: a corrupted branch can
/// loop until the cycle limit, so keep that limit small.
fn bounded_config() -> GpuConfig {
    let mut cfg = GpuConfig::small_test();
    cfg.max_cycles = 100_000;
    cfg
}

fn campaign(spec: &str, seed: u64, runs: u32) -> sparseweaver::core::campaign::CampaignResult {
    let g = generators::uniform(16, 48, 3);
    run_campaign(
        &bounded_config(),
        &g,
        &Bfs::new(0),
        Schedule::SparseWeaver,
        &CampaignConfig::new(FaultSpec::parse(spec).expect("valid spec"), seed, runs),
    )
    .expect("golden run")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Decoding *arbitrary* header/payload pairs returns `Ok` or a typed
    /// `DecodeError` — never panics, never indexes out of range.
    #[test]
    fn decoding_arbitrary_words_never_panics(hdr in any::<u32>(), payload in any::<u64>()) {
        let _ = decode_instr(hdr, payload);
        let _ = decode_weaver(hdr);
    }

    /// Any instruction that survives decoding round-trips through the
    /// encoder without panicking (the fetch-fault path re-encodes every
    /// issued instruction).
    #[test]
    fn decoded_instructions_reencode_without_panicking(
        hdr in any::<u32>(),
        payload in any::<u64>(),
    ) {
        if let Ok(instr) = decode_instr(hdr, payload) {
            let _ = encode_instr(&instr);
        }
    }
}

proptest! {
    // Each case is a golden run plus two injected BFS runs; keep the
    // case count modest so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Bit-flipped programs (instruction-fetch corruption at a high rate)
    /// never panic the simulator, and every run lands in exactly one of
    /// the four outcome classes.
    #[test]
    fn bit_flipped_programs_are_always_classified(seed in any::<u64>()) {
        let r = campaign("fetch=0.01", seed, 2);
        prop_assert_eq!(r.panics, 0, "simulator panicked under fetch corruption");
        prop_assert!(r.summary.is_classified(), "unclassified run: {:?}", r.summary);
    }

    /// Mixed-site corruption (registers, memory words, fetch, Weaver
    /// responses) keeps the same totality guarantee.
    #[test]
    fn mixed_site_corruption_is_always_classified(seed in any::<u64>()) {
        let r = campaign("reg=0.005,mem=0.002,fetch=0.002,weaver-drop=0.05", seed, 2);
        prop_assert_eq!(r.panics, 0);
        prop_assert!(r.summary.is_classified(), "unclassified run: {:?}", r.summary);
    }

    /// The same campaign seed reproduces the campaign byte-for-byte:
    /// identical per-run outcomes and an identical rendered summary.
    #[test]
    fn same_seed_gives_byte_identical_campaign(seed in any::<u64>()) {
        let a = campaign("reg=0.003,mem=0.001", seed, 2);
        let b = campaign("reg=0.003,mem=0.001", seed, 2);
        prop_assert_eq!(a.summary.to_json(), b.summary.to_json());
        prop_assert_eq!(a.runs, b.runs);
        prop_assert_eq!(a.panics, b.panics);
    }
}
