//! Integration tests of the SIMT machine model itself: nested divergence,
//! votes under partial masks, coalescing, atomic contention, barrier
//! interactions — written as raw IR kernels against the simulator.

use sparseweaver::isa::{Asm, AtomOp, CsrKind, VoteOp, Width};
use sparseweaver::sim::{Gpu, GpuConfig, SimError};

fn gpu() -> Gpu {
    let mut g = Gpu::new(GpuConfig::small_test());
    g.mem_mut().grow_to(1 << 20);
    g
}

#[test]
fn nested_divergence_three_deep() {
    // Classify each lane by its low three bits through nested ifs, then
    // store a distinct value per class.
    let mut a = Asm::new("nested");
    let lane = a.reg();
    let tid = a.reg();
    let out = a.reg();
    let b0 = a.reg();
    let b1 = a.reg();
    let b2 = a.reg();
    a.csr(lane, CsrKind::GlobalTid);
    a.csr(tid, CsrKind::GlobalTid);
    a.li(out, 0);
    a.alui(sparseweaver::isa::AluOp::And, b0, lane, 1);
    a.alui(sparseweaver::isa::AluOp::And, b1, lane, 2);
    a.alui(sparseweaver::isa::AluOp::And, b2, lane, 4);
    a.if_else(
        b0,
        |a| {
            a.if_else(
                b1,
                |a| {
                    a.if_else(b2, |a| a.li(out, 7), |a| a.li(out, 3));
                },
                |a| {
                    a.if_else(b2, |a| a.li(out, 5), |a| a.li(out, 1));
                },
            );
        },
        |a| {
            a.if_else(
                b1,
                |a| {
                    a.if_else(b2, |a| a.li(out, 6), |a| a.li(out, 2));
                },
                |a| {
                    a.if_else(b2, |a| a.li(out, 4), |a| a.li(out, 0));
                },
            );
        },
    );
    let addr = a.reg();
    a.muli(addr, tid, 8);
    a.stg(out, addr, 0, Width::B8);
    a.halt();
    let p = a.finish();

    let mut g = gpu();
    g.launch(&p, &[]).unwrap();
    for t in 0..g.config().total_threads() as u64 {
        assert_eq!(g.mem().read(t * 8, 8), t & 7, "thread {t}");
    }
}

#[test]
fn vote_all_under_partial_mask() {
    // Inside a split, vote::All must consider only the active lanes.
    let mut a = Asm::new("vote_mask");
    let lane = a.reg();
    let odd = a.reg();
    let one = a.reg();
    let allr = a.reg();
    let addr = a.reg();
    a.csr(lane, CsrKind::LaneId);
    a.alui(sparseweaver::isa::AluOp::And, odd, lane, 1);
    a.li(one, 1);
    a.li(allr, 99);
    a.if_nonzero(odd, |a| {
        // Among odd lanes, "odd" is all-true.
        a.vote(VoteOp::All, allr, odd);
    });
    a.csr(addr, CsrKind::GlobalTid);
    a.muli(addr, addr, 8);
    a.stg(allr, addr, 0, Width::B8);
    a.halt();
    let p = a.finish();

    let mut g = gpu();
    g.launch(&p, &[]).unwrap();
    let lanes = g.config().threads_per_warp as u64;
    for t in 0..g.config().total_threads() as u64 {
        let expect = 1; // vote result broadcast to every lane
        let _ = lanes;
        assert_eq!(g.mem().read(t * 8, 8), expect, "thread {t}");
    }
}

#[test]
fn coalesced_load_is_one_line_access() {
    // All lanes read within one 64B line: exactly one L1 access per warp.
    let mut a = Asm::new("coalesced");
    let addr = a.reg();
    let v = a.reg();
    a.li(addr, 4096);
    a.ldg(v, addr, 0, Width::B4);
    a.halt();
    let p = a.finish();
    let mut g = gpu();
    let s = g.launch(&p, &[]).unwrap();
    let warps = g.config().num_cores * g.config().warps_per_core;
    assert_eq!(s.mem.l1.accesses, warps as u64);
}

#[test]
fn scattered_load_touches_many_lines() {
    // Each lane reads its own line: lanes-per-warp accesses per warp.
    let mut a = Asm::new("scattered");
    let tid = a.reg();
    let addr = a.reg();
    let v = a.reg();
    a.csr(tid, CsrKind::GlobalTid);
    a.muli(addr, tid, 64);
    a.ldg(v, addr, 0, Width::B4);
    a.halt();
    let p = a.finish();
    let mut g = gpu();
    let s = g.launch(&p, &[]).unwrap();
    assert_eq!(s.mem.l1.accesses, g.config().total_threads() as u64);
}

#[test]
fn atomic_min_and_max_converge() {
    let mut a = Asm::new("minmax");
    let tid = a.reg();
    let lo = a.reg();
    let hi = a.reg();
    let old = a.reg();
    a.csr(tid, CsrKind::GlobalTid);
    a.addi(tid, tid, 100); // values 100..
    a.li(lo, 0x100);
    a.li(hi, 0x200);
    a.atom(AtomOp::MinU, old, lo, tid);
    a.atom(AtomOp::MaxU, old, hi, tid);
    a.halt();
    let p = a.finish();
    let mut g = gpu();
    g.mem_mut().write(0x100, u64::MAX, 8);
    g.launch(&p, &[]).unwrap();
    let n = g.config().total_threads() as u64;
    assert_eq!(g.mem().read(0x100, 8), 100);
    assert_eq!(g.mem().read(0x200, 8), 100 + n - 1);
}

#[test]
fn unbalanced_join_is_reported() {
    let mut a = Asm::new("bad_join");
    a.emit(sparseweaver::isa::Instr::Join);
    a.halt();
    let p = a.finish();
    match gpu().launch(&p, &[]) {
        Err(SimError::UnbalancedJoin { .. }) => {}
        other => panic!("expected unbalanced join, got {other:?}"),
    }
}

#[test]
fn barrier_after_partial_halt_does_not_deadlock() {
    // Odd warps halt immediately; even warps barrier twice. The barrier
    // must release among the surviving warps.
    let mut a = Asm::new("halt_bar");
    let wid = a.reg();
    let odd = a.reg();
    a.csr(wid, CsrKind::WarpId);
    a.alui(sparseweaver::isa::AluOp::And, odd, wid, 1);
    let survive = a.new_label();
    a.beq(odd, a.zero(), survive);
    a.halt();
    a.bind(survive);
    a.bar();
    a.bar();
    let addr = a.reg();
    let one = a.reg();
    a.li(addr, 0x300);
    a.li(one, 1);
    let old = a.reg();
    a.atom(AtomOp::Add, old, addr, one);
    a.halt();
    let p = a.finish();
    let mut g = gpu();
    g.launch(&p, &[]).unwrap();
    // Every surviving (even) warp of every core counted all its lanes.
    let cfg = g.config();
    let survivors = cfg.num_cores * cfg.warps_per_core / 2;
    assert_eq!(
        g.mem().read(0x300, 8),
        (survivors * cfg.threads_per_warp) as u64
    );
}

#[test]
fn stores_from_divergent_paths_do_not_leak() {
    // Lanes in the else-path must not observe or perform then-path stores.
    let mut a = Asm::new("store_mask");
    let lane = a.reg();
    let cond = a.reg();
    let tid = a.reg();
    let addr = a.reg();
    a.csr(lane, CsrKind::LaneId);
    a.csr(tid, CsrKind::GlobalTid);
    a.sltui(cond, lane, 2);
    a.muli(addr, tid, 8);
    let v = a.reg();
    a.if_else(
        cond,
        |a| {
            a.li(v, 111);
            a.stg(v, addr, 0, Width::B8);
        },
        |a| {
            a.li(v, 222);
            a.stg(v, addr, 0, Width::B8);
        },
    );
    a.halt();
    let p = a.finish();
    let mut g = gpu();
    g.launch(&p, &[]).unwrap();
    let lanes = g.config().threads_per_warp as u64;
    for t in 0..g.config().total_threads() as u64 {
        let expect = if t % lanes < 2 { 111 } else { 222 };
        assert_eq!(g.mem().read(t * 8, 8), expect, "thread {t}");
    }
}
