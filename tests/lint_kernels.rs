//! Lint coverage for the shipped kernels and the verifier itself.
//!
//! Positive path: every built-in algorithm kernel, across every schedule,
//! must lint clean — zero errors *and* zero warnings. These are the same
//! streams `Session::run` launches, so a regression here would also trip
//! the runtime's `LintLevel::Deny` gate.
//!
//! Negative path: the seeded ill-formed fixtures must each trigger
//! exactly their documented rule (`docs/lint-rules.md`), and the `swlint`
//! binary must report both paths with the documented exit codes.

use std::process::Command;

use sparseweaver::core::algorithms::{
    Algorithm, Bfs, ConnectedComponents, Gcn, PageRank, Spmv, Sssp,
};
use sparseweaver::core::compiler::regalloc;
use sparseweaver::core::{Schedule, Session};
use sparseweaver::graph::Direction;
use sparseweaver::lint::{analyze, analyze_with_facts, fixtures, lint, AnalyzeGeom, Severity};
use sparseweaver::sim::GpuConfig;

fn algorithms() -> Vec<(&'static str, Box<dyn Algorithm>)> {
    vec![
        ("pr", Box::new(PageRank::new(1)) as Box<dyn Algorithm>),
        (
            "pr-push",
            Box::new(PageRank::new(1).with_direction(Direction::Push)),
        ),
        ("bfs", Box::new(Bfs::new(0))),
        ("sssp", Box::new(Sssp::new(0))),
        ("sssp-wl", Box::new(Sssp::new(0).with_worklist(true))),
        ("cc", Box::new(ConnectedComponents::new())),
        ("spmv", Box::new(Spmv::new())),
    ]
}

fn configs() -> Vec<(&'static str, GpuConfig)> {
    let mut no_mask = GpuConfig::small_test();
    no_mask.weaver.auto_mask = false;
    vec![
        ("small", GpuConfig::small_test()),
        ("eval", GpuConfig::evaluation_default()),
        ("small/no-auto-mask", no_mask),
    ]
}

#[test]
fn every_builtin_algorithm_kernel_lints_clean() {
    let mut linted = 0usize;
    for (cfg_name, cfg) in configs() {
        for (algo_name, algo) in algorithms() {
            for schedule in Schedule::ALL {
                for program in algo.kernels(schedule, &cfg) {
                    let report = lint(&program);
                    assert!(
                        report.is_clean() && report.warning_count() == 0,
                        "{algo_name}:{} ({schedule:?}, {cfg_name}):\n{}",
                        program.name(),
                        report.to_text()
                    );
                    linted += 1;
                }
            }
        }
    }
    // Every algorithm contributes at least one kernel per schedule.
    assert!(linted >= configs().len() * algorithms().len() * Schedule::ALL.len());
}

#[test]
fn gcn_kernels_lint_clean() {
    for (cfg_name, cfg) in configs() {
        for dim in [1, 8, 16] {
            let gcn = Gcn::new(dim);
            for schedule in Schedule::ALL {
                for program in gcn.kernels(schedule, &cfg) {
                    let report = lint(&program);
                    assert!(
                        report.is_clean() && report.warning_count() == 0,
                        "gcn(dim={dim}):{} ({schedule:?}, {cfg_name}):\n{}",
                        program.name(),
                        report.to_text()
                    );
                }
            }
        }
    }
}

/// Register allocation over the whole kernel zoo: every rewritten stream
/// still lints clean with zero warnings (in particular zero SW-L103
/// dead-write findings), and the pass never increases a kernel's register
/// high-water.
#[test]
fn regalloc_keeps_every_kernel_clean_and_never_grows_pressure() {
    let mut allocated = 0usize;
    for (cfg_name, cfg) in configs() {
        for (algo_name, algo) in algorithms() {
            for schedule in Schedule::ALL {
                for program in algo.kernels(schedule, &cfg) {
                    let pre = program.register_high_water();
                    let result = regalloc::allocate(&program);
                    assert!(
                        result.applied,
                        "{algo_name}:{} ({schedule:?}, {cfg_name}): allocator bailed out",
                        program.name()
                    );
                    let post = result.program.register_high_water();
                    assert!(
                        post <= pre,
                        "{algo_name}:{} ({schedule:?}, {cfg_name}): high-water grew {pre} -> {post}",
                        program.name()
                    );
                    let report = lint(&result.program);
                    assert!(
                        report.is_clean() && report.warning_count() == 0,
                        "{algo_name}:{} ({schedule:?}, {cfg_name}) after regalloc:\n{}",
                        program.name(),
                        report.to_text()
                    );
                    allocated += 1;
                }
            }
        }
    }
    assert!(allocated >= configs().len() * algorithms().len() * Schedule::ALL.len());
}

/// Register allocation is semantics-preserving end to end: with it on and
/// off, every schedule computes identical PageRank vectors (including the
/// shared-memory-scan schedules whose kernels bake thread geometry).
#[test]
fn regalloc_on_off_produce_identical_outputs_for_every_schedule() {
    let graph = sparseweaver::graph::generators::powerlaw(48, 240, 1.8, 3);
    for schedule in Schedule::ALL {
        let mut on = Session::new(GpuConfig::small_test());
        let mut off = Session::new(GpuConfig::small_test());
        off.regalloc = false;
        let r_on = on.run(&graph, &PageRank::new(2), schedule).unwrap();
        let r_off = off.run(&graph, &PageRank::new(2), schedule).unwrap();
        assert!(
            r_on.output.approx_eq(&r_off.output, 1e-12),
            "register allocation changed {schedule:?} output"
        );
    }
}

/// Each seeded ill-formed program trips exactly its documented rule at
/// error severity, so `swlint --selftest` (and the CI step built on it)
/// genuinely proves the verifier is awake.
#[test]
fn ill_formed_fixtures_trigger_their_documented_rules() {
    let fixtures = fixtures::ill_formed();
    assert_eq!(fixtures.len(), 4, "the four seeded fixtures");
    let mut rules_seen = Vec::new();
    for (program, expected_rule) in fixtures {
        let report = lint(&program);
        assert!(
            report.error_count() > 0,
            "{} should have error findings",
            program.name()
        );
        let hit = report
            .diagnostics
            .iter()
            .find(|d| d.rule.id() == expected_rule);
        let hit = hit.unwrap_or_else(|| {
            panic!(
                "{} expected {expected_rule}, got:\n{}",
                program.name(),
                report.to_text()
            )
        });
        assert_eq!(hit.severity(), Severity::Error);
        rules_seen.push(expected_rule);
    }
    // One fixture per check family: dataflow, divergence stack,
    // barrier/mask, Weaver protocol.
    for expected in ["SW-L101", "SW-L201", "SW-L301", "SW-L401"] {
        assert!(
            rules_seen.contains(&expected),
            "missing fixture for {expected}"
        );
    }
}

/// Mirror of the lint crate's analyzer-fixture unit test at the
/// integration level: each seeded SW-L5xx fixture is structurally
/// lint-clean (the analyzer finds what the structural verifier cannot)
/// yet trips exactly its documented rule at the fixture geometry.
#[test]
fn analyzer_fixtures_trigger_their_documented_rules() {
    let geom = fixtures::analyzer_geom();
    let fixtures = fixtures::analyzer_flagged();
    assert_eq!(fixtures.len(), 6, "the six seeded analyzer fixtures");
    let mut rules_seen = Vec::new();
    for (program, expected_rule) in fixtures {
        let structural = lint(&program);
        assert!(
            structural.is_clean() && structural.warning_count() == 0,
            "{} must be structurally clean:\n{}",
            program.name(),
            structural.to_text()
        );
        let report = analyze(&program, &geom);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.rule.id() == expected_rule),
            "{} expected {expected_rule}, got:\n{}",
            program.name(),
            report.to_text()
        );
        rules_seen.push(expected_rule);
    }
    for expected in [
        "SW-L501", "SW-L502", "SW-L511", "SW-L521", "SW-L522", "SW-L531",
    ] {
        assert!(
            rules_seen.contains(&expected),
            "missing analyzer fixture for {expected}"
        );
    }
}

/// The abstract-interpretation fixpoint converges on every built-in
/// kernel under every schedule, and its JSON report is byte-identical
/// across runs (the CI golden gate depends on this determinism).
#[test]
fn analyzer_converges_and_is_deterministic_on_every_builtin_kernel() {
    let cfg = GpuConfig::small_test();
    let geom = AnalyzeGeom {
        num_cores: cfg.num_cores as u64,
        warps_per_core: cfg.warps_per_core as u64,
        threads_per_warp: cfg.threads_per_warp as u64,
        shared_mem_bytes: cfg.shared_mem_bytes as u64,
    };
    let mut analyzed = 0usize;
    for (algo_name, algo) in algorithms() {
        for schedule in Schedule::ALL {
            for program in algo.kernels(schedule, &cfg) {
                let (first, facts) = analyze_with_facts(&program, &geom);
                assert!(
                    facts.converged,
                    "{algo_name}:{} ({schedule:?}): fixpoint diverged",
                    program.name()
                );
                // A proved out-of-bounds access in a shipped kernel
                // would also trip the runtime launch gate.
                assert_eq!(
                    first.error_count(),
                    0,
                    "{algo_name}:{} ({schedule:?}):\n{}",
                    program.name(),
                    first.to_text()
                );
                let second = analyze(&program, &geom);
                assert_eq!(
                    first.to_json(),
                    second.to_json(),
                    "analyzer output must be deterministic"
                );
                analyzed += 1;
            }
        }
    }
    assert!(analyzed >= algorithms().len() * Schedule::ALL.len());
}

/// `Session::analyze_kernels` stamps every report with the kernel name
/// and the schedule's paper notation, in both the struct fields and the
/// JSON document.
#[test]
fn session_analyze_kernels_attaches_kernel_and_schedule_context() {
    let session = Session::new(GpuConfig::small_test());
    let reports = session
        .analyze_kernels(&PageRank::new(1), Schedule::SparseWeaver)
        .expect("kernel generation succeeds");
    assert!(!reports.is_empty());
    for r in &reports {
        let kernel = r.kernel.as_deref().expect("kernel context set");
        assert!(kernel.starts_with("pagerank"), "{kernel}");
        assert_eq!(r.schedule.as_deref(), Some("SparseWeaver"));
        let json = r.to_json();
        assert!(json.contains(&format!("\"kernel\":\"{kernel}\"")), "{json}");
        assert!(json.contains("\"schedule\":\"SparseWeaver\""), "{json}");
    }
}

// ---------------------------------------------------------------- swlint CLI

fn swlint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_swlint"))
}

#[test]
fn swlint_all_clean_exits_zero() {
    let out = swlint()
        .args(["--config", "small"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 error(s), 0 warning(s)"), "{text}");
    assert!(!text.contains("FAIL"), "{text}");
}

#[test]
fn swlint_json_emits_one_report_per_line() {
    let out = swlint()
        .args([
            "--algo",
            "bfs",
            "--schedule",
            "sw",
            "--config",
            "small",
            "--json",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for line in text.lines() {
        assert!(line.starts_with("{\"program\":"), "{line}");
        assert!(line.contains("\"errors\":0"), "{line}");
    }
    assert!(!text.trim().is_empty());
}

#[test]
fn swlint_selftest_exits_zero_when_healthy_and_names_every_rule() {
    let out = swlint().arg("--selftest").output().expect("spawn");
    assert_eq!(
        out.status.code(),
        Some(0),
        "healthy selftest exits 0 (same convention as swprof --selftest)"
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "SW-L101", "SW-L201", "SW-L301", "SW-L401", "SW-L501", "SW-L502", "SW-L511", "SW-L521",
        "SW-L522", "SW-L531",
    ] {
        assert!(text.contains(rule), "missing {rule} in:\n{text}");
    }
    assert!(text.contains("verifier healthy"), "{text}");
}

#[test]
fn swlint_rejects_unknown_flags_and_values_with_exit_2() {
    for args in [
        &["--bogus"][..],
        &["--algo", "nope"][..],
        &["--schedule", "nope"][..],
        &["--config", "nope"][..],
    ] {
        let out = swlint().args(args).output().expect("spawn");
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
}

#[test]
fn swlint_version_matches_workspace_version() {
    for flag in ["--version", "-V"] {
        let out = swlint().arg(flag).output().expect("spawn");
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(
            text.starts_with("swlint ") && text.contains(env!("CARGO_PKG_VERSION")),
            "{text}"
        );
    }
}

// ------------------------------------------------------------- swsim flags

fn swsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_swsim"))
}

#[test]
fn swsim_rejects_bad_lint_level_with_exit_2() {
    let out = swsim()
        .args([
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "bfs",
            "--schedule",
            "svm",
            "--config",
            "small",
            "--lint",
            "bogus",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown lint level"));
}

#[test]
fn swlint_regs_prints_pre_and_post_high_water_per_kernel() {
    let out = swlint()
        .args(["--config", "small", "--regs"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let mut kernels = 0;
    for line in text.lines().filter(|l| l.contains(':')) {
        let fields: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(fields.len(), 3, "expected `LABEL PRE POST`: {line}");
        let pre: usize = fields[1].parse().expect("pre high-water");
        let post: usize = fields[2].parse().expect("post high-water");
        assert!(post <= pre, "{line}: allocation grew register pressure");
        kernels += 1;
    }
    assert!(kernels > 30, "only {kernels} kernels listed:\n{text}");
}

#[test]
fn swsim_rejects_bad_regalloc_value_with_exit_2() {
    let out = swsim()
        .args([
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "bfs",
            "--schedule",
            "svm",
            "--config",
            "small",
            "--regalloc",
            "bogus",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--regalloc expects on|off"));
}

/// The acceptance scenario for the occupancy model: on the
/// register-file-limited config the cap binds (resident < configured),
/// and both export documents carry it.
#[test]
fn swsim_regfile_config_shows_binding_occupancy_cap_in_exports() {
    let metrics = std::env::temp_dir().join("sw_cli_occupancy_metrics.json");
    let trace = std::env::temp_dir().join("sw_cli_occupancy_trace.json");
    let out = swsim()
        .args([
            "run",
            "--gen",
            "uniform:60:240:7",
            "--algo",
            "pr",
            "--schedule",
            "svm",
            "--config",
            "regfile",
            "--metrics-out",
        ])
        .arg(&metrics)
        .arg("--trace")
        .arg(&trace)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[regfile cap:"), "{stdout}");
    let metrics_doc = std::fs::read_to_string(&metrics).unwrap();
    let occ = metrics_doc
        .split("\"occupancy\":{")
        .nth(1)
        .and_then(|rest| rest.split('}').next())
        .expect("occupancy object in metrics.json");
    let field = |name: &str| -> u64 {
        occ.split(&format!("\"{name}\":"))
            .nth(1)
            .and_then(|rest| {
                rest.split(|c: char| !c.is_ascii_digit())
                    .next()
                    .and_then(|d| d.parse().ok())
            })
            .unwrap_or_else(|| panic!("missing {name} in {occ}"))
    };
    let resident = field("warps_resident");
    let configured = field("warps_configured");
    assert!(resident >= 1 && resident < configured, "{occ}");
    assert!(field("kernel_high_water") > 0, "{occ}");
    let trace_doc = std::fs::read_to_string(&trace).unwrap();
    assert!(
        trace_doc.contains("\"name\":\"occupancy\""),
        "no counter track"
    );
    assert!(
        trace_doc.contains("\"name\":\"warps:core0\""),
        "no warp track"
    );
    let _ = std::fs::remove_file(&metrics);
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn swsim_trace_out_streams_jsonl_file() {
    let path = std::env::temp_dir().join("sw_cli_trace_out.jsonl");
    let out = swsim()
        .args([
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "bfs",
            "--schedule",
            "svm",
            "--config",
            "small",
            "--trace-out",
        ])
        .arg(&path)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("event stream written to"));
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.lines().count() > 2);
    assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    assert!(text.contains("kernel_launch"));
    let _ = std::fs::remove_file(&path);
}
