//! The GCN operators (Case Study 2) must produce the host-reference
//! layer output under every scheduling scheme and both parallelization
//! strategies.

use sparseweaver::core::algorithms::Gcn;
use sparseweaver::core::{Schedule, Session};
use sparseweaver::graph::{generators, Direction};
use sparseweaver::sim::GpuConfig;

fn max_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max)
}

#[test]
fn gcn_gather_template_matches_reference_under_every_schedule() {
    let g = generators::powerlaw(60, 360, 1.8, 4);
    for k in [1usize, 3, 8] {
        let gcn = Gcn::new(k);
        let want = gcn.reference(&g, Direction::Pull);
        for schedule in Schedule::ALL {
            let session = Session::new(GpuConfig::small_test());
            let mut rt = session
                .runtime(&g, Direction::Pull, schedule)
                .expect("runtime");
            let got = gcn.run(&mut rt, false).expect("run");
            let d = max_diff(&got.output, &want);
            assert!(d < 1e-9, "K={k} {schedule}: max diff {d}");
        }
    }
}

#[test]
fn weight_parallel_baseline_matches_reference() {
    let g = generators::powerlaw(80, 500, 2.0, 9);
    for k in [1usize, 2, 16] {
        let gcn = Gcn::new(k);
        let want = gcn.reference(&g, Direction::Pull);
        let session = Session::new(GpuConfig::small_test());
        let mut rt = session
            .runtime(&g, Direction::Pull, Schedule::Svm)
            .expect("runtime");
        let got = gcn.run(&mut rt, true).expect("run");
        let d = max_diff(&got.output, &want);
        assert!(d < 1e-9, "K={k}: max diff {d}");
    }
}

#[test]
fn strategies_agree_with_each_other() {
    let g = generators::rmat(6, 250, 0.57, 0.19, 0.19, 2);
    let gcn = Gcn::new(4);
    let session = Session::new(GpuConfig::small_test());
    let mut rt_a = session
        .runtime(&g, Direction::Pull, Schedule::Svm)
        .expect("runtime");
    let a = gcn.run(&mut rt_a, true).expect("baseline");
    let mut rt_b = session
        .runtime(&g, Direction::Pull, Schedule::SparseWeaver)
        .expect("runtime");
    let b = gcn.run(&mut rt_b, false).expect("sparseweaver");
    assert!(max_diff(&a.output, &b.output) < 1e-9);
    // The report's kernel accounting is populated.
    assert!(a.graphsum_cycles > 0 && a.spmm_cycles > 0);
    assert!(b.graphsum_cycles > 0 && b.spmm_cycles > 0);
    assert!(b.total_cycles >= b.graphsum_cycles + b.spmm_cycles);
}

#[test]
fn isolated_vertices_contribute_nothing() {
    use sparseweaver::graph::Csr;
    let g = Csr::from_edges(6, &[(0, 1), (1, 0)]);
    let gcn = Gcn::new(2);
    let want = gcn.reference(&g, Direction::Pull);
    let session = Session::new(GpuConfig::small_test());
    let mut rt = session
        .runtime(&g, Direction::Pull, Schedule::SparseWeaver)
        .expect("runtime");
    let got = gcn.run(&mut rt, false).expect("run");
    assert!(max_diff(&got.output, &want) < 1e-12);
    // Vertices 2..6 have no in-edges: zero aggregation, zero output.
    for v in 2..6 {
        for j in 0..2 {
            assert_eq!(got.output[v * 2 + j], 0.0);
        }
    }
}
