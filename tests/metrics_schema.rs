//! Golden key-set snapshot of the `metrics.json` schema
//! (`sparseweaver-metrics-v1`).
//!
//! Downstream consumers address this document by key path:
//! `tests/analytic_validation.rs` reads `totals.phase_cycles."Gather &
//! Sum"`, and the `scripts/check_*.sh` CI gates `jq` their way through
//! `totals` and `samples`. Removing or renaming a key breaks them
//! silently — this test pins the complete key set so any schema change
//! has to be made consciously, here, together with a version-string
//! review.
//!
//! Adding a key is a schema *extension*: extend [`GOLDEN_KEYS`] in the
//! same change. Removing or renaming one is a schema *break*: bump
//! `sparseweaver-metrics-v1` and update every consumer listed above.

use std::collections::BTreeSet;

use sparseweaver::core::algorithms::PageRank;
use sparseweaver::core::{Schedule, Session};
use sparseweaver::graph::generators;
use sparseweaver::sim::GpuConfig;
use sparseweaver::trace::json::{self, Value};
use sparseweaver::trace::{export, TraceConfig};

/// Every key path the v1 metrics document guarantees. Array elements are
/// addressed as `[]` (all elements share one shape).
const GOLDEN_KEYS: &[&str] = &[
    "dropped_events",
    "kernels",
    "kernels[].cycles",
    "kernels[].name",
    "kernels[].start",
    "sample_every",
    "samples",
    "samples[].counters",
    "samples[].cycle",
    "schema",
    "total_cycles",
    "totals",
];

/// Key paths guaranteed inside every counter snapshot (`totals` and each
/// `samples[].counters` render through the same exporter).
const GOLDEN_COUNTER_KEYS: &[&str] = &[
    "cache",
    "cache.dram_accesses",
    "cache.l1_accesses",
    "cache.l1_hits",
    "cache.l2_accesses",
    "cache.l2_hits",
    "cache.l3_accesses",
    "cache.l3_hits",
    "device_mem",
    "device_mem.reads",
    "device_mem.writes",
    "faults",
    "faults.injected",
    "faults.weaver_drops",
    "faults.weaver_fallbacks",
    "faults.weaver_retries",
    "instructions",
    "occupancy",
    "occupancy.cap",
    "occupancy.kernel_high_water",
    "occupancy.warps_configured",
    "occupancy.warps_resident",
    "phase_cycles",
    "phase_cycles.Edge info access",
    "phase_cycles.Gather & Sum",
    "phase_cycles.Init",
    "phase_cycles.Other",
    "phase_cycles.Registration",
    "phase_cycles.Work ID calc",
    "shared",
    "shared.reads",
    "shared.writes",
    "stalls",
    "stalls.barrier",
    "stalls.exec_dep",
    "stalls.l1_queue",
    "stalls.memory",
    "stalls.shared",
    "stalls.stall_total",
    "stalls.weaver",
    "thread_instructions",
    "weaver",
    "weaver.dec_requests",
    "weaver.registrations",
    "weaver.st_fetches",
];

fn collect_keys(prefix: &str, v: &Value, out: &mut BTreeSet<String>) {
    match v {
        Value::Obj(map) => {
            for (k, child) in map {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                out.insert(path.clone());
                collect_keys(&path, child, out);
            }
        }
        Value::Arr(items) => {
            for item in items {
                collect_keys(&format!("{prefix}[]"), item, out);
            }
        }
        _ => {}
    }
}

fn metrics_document() -> Value {
    let g = generators::uniform(40, 160, 5);
    let mut s = Session::new(GpuConfig::small_test());
    s.trace = Some(TraceConfig {
        sample_every: 200,
        ..TraceConfig::default()
    });
    let r = s
        .run(&g, &PageRank::new(2), Schedule::SparseWeaver)
        .expect("run");
    let trace = r.trace.expect("trace collected");
    json::parse(&export::metrics_json(&trace)).expect("metrics.json parses")
}

#[test]
fn metrics_json_key_set_matches_the_golden_snapshot() {
    let doc = metrics_document();

    // Top-level shape, with the counter subtrees handled separately.
    let mut top = BTreeSet::new();
    collect_keys("", &doc, &mut top);
    let top: BTreeSet<String> = top
        .into_iter()
        .filter(|k| !k.starts_with("totals.") && !k.starts_with("samples[].counters."))
        .collect();
    let expected: BTreeSet<String> = GOLDEN_KEYS.iter().map(|s| s.to_string()).collect();
    let missing: Vec<&String> = expected.difference(&top).collect();
    let extra: Vec<&String> = top.difference(&expected).collect();
    assert!(
        missing.is_empty() && extra.is_empty(),
        "metrics.json top-level key set drifted.\n\
         missing (schema break — bump the version): {missing:?}\n\
         extra (schema extension — add to GOLDEN_KEYS): {extra:?}"
    );

    // Counter snapshots: totals and every sample share one shape.
    let expected: BTreeSet<String> = GOLDEN_COUNTER_KEYS.iter().map(|s| s.to_string()).collect();
    let samples = doc.get("samples").and_then(Value::as_arr).expect("samples");
    assert!(!samples.is_empty(), "a profiled run produces samples");
    let snapshots = std::iter::once(("totals", doc.get("totals").expect("totals"))).chain(
        samples
            .iter()
            .map(|s| ("samples[].counters", s.get("counters").expect("counters"))),
    );
    for (what, counters) in snapshots {
        let mut keys = BTreeSet::new();
        collect_keys("", counters, &mut keys);
        let missing: Vec<&String> = expected.difference(&keys).collect();
        let extra: Vec<&String> = keys.difference(&expected).collect();
        assert!(
            missing.is_empty() && extra.is_empty(),
            "{what} counter key set drifted.\n\
             missing (schema break — bump the version): {missing:?}\n\
             extra (schema extension — add to GOLDEN_COUNTER_KEYS): {extra:?}"
        );
    }
}

#[test]
fn metrics_json_schema_version_is_pinned() {
    let doc = metrics_document();
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("sparseweaver-metrics-v1"),
        "schema version changed — update every consumer, then this pin"
    );
    // The exact lookups downstream consumers perform today.
    let gather = doc
        .get("totals")
        .and_then(|t| t.get("phase_cycles"))
        .and_then(|p| p.get("Gather & Sum"))
        .and_then(Value::as_num);
    assert!(
        gather.is_some(),
        "tests/analytic_validation.rs reads totals.phase_cycles.\"Gather & Sum\""
    );
    let stall_total = doc
        .get("totals")
        .and_then(|t| t.get("stalls"))
        .and_then(|s| s.get("stall_total"))
        .and_then(Value::as_num);
    assert!(stall_total.is_some(), "stalls.stall_total is exported");
}
