//! End-to-end tests of the `swsim` CLI binary.

use std::process::Command;

fn swsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_swsim"))
}

#[test]
fn datasets_lists_all_nine() {
    let out = swsim().arg("datasets").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for id in ["D_bh", "D_bm", "D_rn", "D_rc", "D_g500", "D_co", "D_hw", "D_uk", "D_wk"] {
        assert!(text.contains(id), "missing {id}");
    }
}

#[test]
fn run_json_emits_parseable_record() {
    let out = swsim()
        .args([
            "run",
            "--gen",
            "uniform:60:240:3",
            "--algo",
            "pr",
            "--schedule",
            "sw",
            "--config",
            "small",
            "--iters",
            "2",
            "--json",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    let line = text.lines().next().expect("one json line");
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    assert!(line.contains("\"schedule\":\"SparseWeaver\""));
    assert!(line.contains("\"cycles\":"));
}

#[test]
fn gen_then_run_round_trips_through_a_file() {
    let dir = std::env::temp_dir().join("swsim_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("g.el");
    let out = swsim()
        .args(["gen", "--gen", "powerlaw:50:300:1.8:4", "-o"])
        .arg(&path)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = swsim()
        .args(["run", "--graph"])
        .arg(&path)
        .args(["--algo", "bfs", "--schedule", "svm", "--config", "small"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("S_vm"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn disasm_prints_fig9_structure() {
    let out = swsim()
        .args(["disasm", "--schedule", "sw", "--config", "small"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("weaver.reg"));
    assert!(text.contains("weaver.dec.id"));
    assert!(text.contains("weaver.dec.loc"));
    assert!(text.contains("bar"));
    assert!(text.contains("tmc"));
}

#[test]
fn all_schedules_flag_runs_the_whole_set() {
    let out = swsim()
        .args([
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "cc",
            "--all-schedules",
            "--config",
            "small",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    for s in ["S_vm", "S_em", "S_wm", "S_cm", "S_twc", "SparseWeaver", "EGHW"] {
        assert!(text.contains(s), "missing {s}");
    }
}

#[test]
fn unknown_arguments_fail_with_usage() {
    let out = swsim().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}
