//! End-to-end tests of the `swsim` and `swfault` CLI binaries.

use std::process::Command;

fn swsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_swsim"))
}

fn swfault() -> Command {
    Command::new(env!("CARGO_BIN_EXE_swfault"))
}

fn swprof() -> Command {
    Command::new(env!("CARGO_BIN_EXE_swprof"))
}

fn swlint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_swlint"))
}

/// The tools share one selftest convention: healthy exits 0, a broken
/// fixture exits 1. Both binaries sit in the same matrix so a drift in
/// either direction fails here by name.
#[test]
fn selftest_exit_codes_are_aligned_across_tools() {
    for (name, mut cmd) in [("swlint", swlint()), ("swprof", swprof())] {
        let out = cmd.arg("--selftest").output().expect("spawn");
        assert_eq!(
            out.status.code(),
            Some(0),
            "{name} --selftest (healthy) stdout: {}",
            String::from_utf8_lossy(&out.stdout)
        );
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("healthy"),
            "{name} --selftest must report healthy"
        );
    }
}

/// `swsim run --analyze` surfaces the analyzer's coalescing advisories
/// ahead of the run summary and still exits 0 (advisories never gate).
#[test]
fn swsim_run_analyze_prints_advisories_and_exits_zero() {
    let out = swsim()
        .args([
            "run",
            "--gen",
            "uniform:60:240:3",
            "--algo",
            "pr",
            "--schedule",
            "sw",
            "--config",
            "small",
            "--iters",
            "2",
            "--analyze",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("SW-L521"), "no coalescing advisory:\n{text}");
    assert!(
        text.contains("@ SparseWeaver]"),
        "no schedule context:\n{text}"
    );
    assert!(text.contains("cycles"), "run summary missing:\n{text}");
}

#[test]
fn datasets_lists_all_nine() {
    let out = swsim().arg("datasets").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for id in [
        "D_bh", "D_bm", "D_rn", "D_rc", "D_g500", "D_co", "D_hw", "D_uk", "D_wk",
    ] {
        assert!(text.contains(id), "missing {id}");
    }
}

#[test]
fn run_json_emits_parseable_record() {
    let out = swsim()
        .args([
            "run",
            "--gen",
            "uniform:60:240:3",
            "--algo",
            "pr",
            "--schedule",
            "sw",
            "--config",
            "small",
            "--iters",
            "2",
            "--json",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let line = text.lines().next().expect("one json line");
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    assert!(line.contains("\"schedule\":\"SparseWeaver\""));
    assert!(line.contains("\"cycles\":"));
}

#[test]
fn gen_then_run_round_trips_through_a_file() {
    let dir = std::env::temp_dir().join("swsim_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("g.el");
    let out = swsim()
        .args(["gen", "--gen", "powerlaw:50:300:1.8:4", "-o"])
        .arg(&path)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = swsim()
        .args(["run", "--graph"])
        .arg(&path)
        .args(["--algo", "bfs", "--schedule", "svm", "--config", "small"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("S_vm"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn disasm_prints_fig9_structure() {
    let out = swsim()
        .args(["disasm", "--schedule", "sw", "--config", "small"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("weaver.reg"));
    assert!(text.contains("weaver.dec.id"));
    assert!(text.contains("weaver.dec.loc"));
    assert!(text.contains("bar"));
    assert!(text.contains("tmc"));
}

#[test]
fn all_schedules_flag_runs_the_whole_set() {
    let out = swsim()
        .args([
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "cc",
            "--all-schedules",
            "--config",
            "small",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for s in [
        "S_vm",
        "S_em",
        "S_wm",
        "S_cm",
        "S_twc",
        "SparseWeaver",
        "EGHW",
    ] {
        assert!(text.contains(s), "missing {s}");
    }
}

#[test]
fn unknown_arguments_fail_with_usage() {
    let out = swsim().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn version_flag_prints_version_and_succeeds() {
    for flag in ["--version", "-V"] {
        let out = swsim().arg(flag).output().expect("spawn");
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(
            text.starts_with("swsim ") && text.contains(env!("CARGO_PKG_VERSION")),
            "{text}"
        );
    }
}

/// Every bad flag combination must exit with code 2, not succeed, not panic.
#[test]
fn bad_flag_combinations_exit_with_code_2() {
    let cases: &[&[&str]] = &[
        // Unknown flag for the subcommand.
        &[
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "pr",
            "--schedule",
            "sw",
            "--bogus",
        ],
        &["datasets", "--algo", "pr"],
        // Conflicting graph sources.
        &[
            "run",
            "--gen",
            "uniform:40:160:1",
            "--dataset",
            "D_hw",
            "--algo",
            "pr",
            "--schedule",
            "sw",
        ],
        // --schedule with --all-schedules.
        &[
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "pr",
            "--schedule",
            "sw",
            "--all-schedules",
        ],
        // Trace modifiers without tracing.
        &[
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "pr",
            "--schedule",
            "sw",
            "--trace-level",
            "all",
        ],
        &[
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "pr",
            "--schedule",
            "sw",
            "--sample-every",
            "100",
        ],
        // Tracing across all schedules is not a single timeline.
        &[
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "pr",
            "--all-schedules",
            "--trace",
            "/tmp/t.json",
        ],
        // Bad numerics and bad level.
        &[
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "pr",
            "--schedule",
            "sw",
            "--iters",
            "lots",
        ],
        &[
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "pr",
            "--schedule",
            "sw",
            "--trace",
            "/tmp/t.json",
            "--sample-every",
            "soon",
        ],
        &[
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "pr",
            "--schedule",
            "sw",
            "--trace",
            "/tmp/t.json",
            "--trace-level",
            "everything",
        ],
        // Profiling across all schedules would overwrite one artifact.
        &[
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "pr",
            "--all-schedules",
            "--profile-out",
            "/tmp/p.json",
        ],
        // Artifact flags with a missing path value.
        &[
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "pr",
            "--schedule",
            "sw",
            "--profile-out",
        ],
        &[
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "pr",
            "--schedule",
            "sw",
            "--metrics-out",
        ],
    ];
    for args in cases {
        let out = swsim().args(*args).output().expect("spawn");
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {:?} stderr: {}",
            args,
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

/// Exit 1 with line-and-snippet context when the edge list is corrupt.
#[test]
fn corrupt_graph_file_exits_1_with_line_context() {
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/corrupt.el");
    let out = swsim()
        .args([
            "run",
            "--graph",
            fixture,
            "--algo",
            "bfs",
            "--schedule",
            "svm",
            "--config",
            "small",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 4"), "stderr: {err}");
    assert!(err.contains("`2 banana`"), "stderr: {err}");
}

/// A malformed --inject spec and --seed without --inject are usage errors.
#[test]
fn bad_injection_flags_exit_with_code_2() {
    let cases: &[&[&str]] = &[
        &[
            "run",
            "--gen",
            "uniform:24:72:7",
            "--algo",
            "bfs",
            "--schedule",
            "sw",
            "--config",
            "small",
            "--inject",
            "gamma-rays=0.5",
        ],
        &[
            "run",
            "--gen",
            "uniform:24:72:7",
            "--algo",
            "bfs",
            "--schedule",
            "sw",
            "--config",
            "small",
            "--seed",
            "3",
        ],
        &[
            "run",
            "--gen",
            "uniform:24:72:7",
            "--algo",
            "bfs",
            "--schedule",
            "sw",
            "--config",
            "small",
            "--inject",
            "reg=0.1",
            "--fallback",
            "sometimes",
        ],
    ];
    for args in cases {
        let out = swsim().args(*args).output().expect("spawn");
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {:?} stderr: {}",
            args,
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

/// Weaver-drop injection with graceful degradation enabled (the default)
/// still exits 0: retries exhaust, the run falls back to S_wm, and the
/// output matches the fault-free result.
#[test]
fn weaver_drop_with_fallback_succeeds() {
    let out = swsim()
        .args([
            "run",
            "--gen",
            "uniform:24:72:7",
            "--algo",
            "bfs",
            "--schedule",
            "sw",
            "--config",
            "small",
            "--inject",
            "weaver-drop=1.0",
            "--seed",
            "5",
        ])
        .output()
        .expect("spawn");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// With fallback disabled, the same injection surfaces as a hang:
/// exit 4 and a structured hang report written to --hang-report.
#[test]
fn weaver_drop_without_fallback_exits_4_and_writes_hang_report() {
    let dir = std::env::temp_dir().join("swsim_cli_hang_test");
    std::fs::create_dir_all(&dir).unwrap();
    let report = dir.join("hang.json");
    let out = swsim()
        .args([
            "run",
            "--gen",
            "uniform:24:72:7",
            "--algo",
            "bfs",
            "--schedule",
            "sw",
            "--config",
            "small",
            "--inject",
            "weaver-drop=1.0",
            "--seed",
            "5",
            "--fallback",
            "off",
            "--hang-report",
        ])
        .arg(&report)
        .output()
        .expect("spawn");
    assert_eq!(
        out.status.code(),
        Some(4),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(&report).unwrap();
    assert!(body.contains("\"schema\":\"sparseweaver-hang-report-v1\""));
    assert!(body.contains("\"warps\""));
    assert!(body.contains("\"weaver_fsm_state\""));
    let _ = std::fs::remove_file(&report);
}

/// A --trace-out stream that hits an I/O error mid-run exits 3 (the run
/// itself succeeded, but the on-disk event timeline is incomplete).
#[test]
#[cfg(target_os = "linux")]
fn trace_out_stream_error_exits_3() {
    let out = swsim()
        .args([
            "run",
            "--gen",
            "uniform:24:72:7",
            "--algo",
            "bfs",
            "--schedule",
            "svm",
            "--config",
            "small",
            "--trace-out",
            "/dev/full",
        ])
        .output()
        .expect("spawn");
    assert_eq!(
        out.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// A small fixed-seed campaign via `swfault`: deterministic summary,
/// every run classified, no panics.
#[test]
fn swfault_campaign_is_deterministic_and_classified() {
    let run = || {
        let out = swfault()
            .args([
                "--inject",
                "reg=0.002,mem=0.001",
                "--runs",
                "5",
                "--seed",
                "42",
            ])
            .output()
            .expect("spawn");
        assert_eq!(
            out.status.code(),
            Some(0),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must give a byte-identical summary");
    assert!(a.contains("\"schema\":\"sparseweaver-fault-campaign-v1\""));
    assert!(a.contains("\"runs\":5"));
}

#[test]
fn swfault_rejects_bad_spec_with_usage_error() {
    let out = swfault()
        .args(["--inject", "cosmic=1.0"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn trace_flags_write_both_output_files() {
    let dir = std::env::temp_dir().join("swsim_cli_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("out.trace.json");
    let metrics = dir.join("metrics.json");
    let out = swsim()
        .args([
            "run",
            "--gen",
            "uniform:60:240:3",
            "--algo",
            "bfs",
            "--schedule",
            "sw",
            "--config",
            "small",
            "--trace",
        ])
        .arg(&trace)
        .args([
            "--trace-level",
            "all",
            "--sample-every",
            "200",
            "--metrics-out",
        ])
        .arg(&metrics)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let trace_body = std::fs::read_to_string(&trace).unwrap();
    assert!(trace_body.contains("\"traceEvents\""));
    let metrics_body = std::fs::read_to_string(&metrics).unwrap();
    assert!(metrics_body.contains("\"schema\":\"sparseweaver-metrics-v1\""));
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&metrics);
}

/// `-` as an artifact path writes to stdout instead of a file named `-`.
#[test]
fn dash_paths_write_artifacts_to_stdout() {
    let dir = std::env::temp_dir().join("swsim_cli_dash_test");
    std::fs::create_dir_all(&dir).unwrap();
    let base: &[&str] = &[
        "run",
        "--gen",
        "uniform:24:72:7",
        "--algo",
        "bfs",
        "--schedule",
        "sw",
        "--config",
        "small",
        "--json",
    ];
    // --metrics-out -: stdout is exactly the artifact (the --json run
    // summary moves to stderr), so the whole stream parses as one doc.
    let out = swsim()
        .args(base)
        .args(["--metrics-out", "-"])
        .current_dir(&dir)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let doc = sparseweaver::trace::json::parse(&text).expect("stdout is pure JSON");
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some("sparseweaver-metrics-v1")
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("\"schedule\""),
        "run summary moved to stderr"
    );
    // --profile-out -
    let out = swsim()
        .args(base)
        .args(["--profile-out", "-"])
        .current_dir(&dir)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let doc = sparseweaver::trace::json::parse(&text).expect("stdout is pure JSON");
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some("sparseweaver-profile-v1")
    );
    // --trace-out - streams JSONL events to stdout.
    let out = swsim()
        .args(base)
        .args(["--trace-out", "-"])
        .current_dir(&dir)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("kernel_launch"), "events on stdout: {text}");
    // --hang-report - prints the report to stdout on exit 4.
    let out = swsim()
        .args([
            "run",
            "--gen",
            "uniform:24:72:7",
            "--algo",
            "bfs",
            "--schedule",
            "sw",
            "--config",
            "small",
            "--inject",
            "weaver-drop=1.0",
            "--seed",
            "5",
            "--fallback",
            "off",
            "--hang-report",
            "-",
        ])
        .current_dir(&dir)
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(4));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"schema\":\"sparseweaver-hang-report-v1\""));
    // In no case did a file literally named `-` appear.
    assert!(!dir.join("-").exists(), "a file named `-` was created");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `swfault --out -` leaves stdout byte-identical to a run without --out:
/// the summary JSON is already there, and no file is created.
#[test]
fn swfault_out_dash_keeps_stdout_identical_and_writes_no_file() {
    let dir = std::env::temp_dir().join("swfault_cli_dash_test");
    std::fs::create_dir_all(&dir).unwrap();
    let run = |extra: &[&str]| {
        let out = swfault()
            .args(["--inject", "reg=0.002", "--runs", "3", "--seed", "9"])
            .args(extra)
            .current_dir(&dir)
            .output()
            .expect("spawn");
        assert_eq!(
            out.status.code(),
            Some(0),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let plain = run(&[]);
    let dashed = run(&["--out", "-"]);
    assert_eq!(plain, dashed, "--out - must not change stdout");
    assert!(!dir.join("-").exists(), "a file named `-` was created");
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end profile pipeline: swsim writes the artifact, swprof reads
/// and diffs it, regression gating drives the exit code.
#[test]
fn profile_artifact_round_trips_through_swprof() {
    let dir = std::env::temp_dir().join("swprof_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let profile_for = |schedule: &str, path: &std::path::Path| {
        let out = swsim()
            .args([
                "run",
                "--gen",
                "uniform:60:240:3",
                "--algo",
                "bfs",
                "--schedule",
                schedule,
                "--config",
                "small",
                "--profile-out",
            ])
            .arg(path)
            .output()
            .expect("spawn");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    let sw = dir.join("sw.json");
    let wm = dir.join("wm.json");
    profile_for("sw", &sw);
    profile_for("wm", &wm);

    // report: human output carries the breakdown; --json is parseable.
    let out = swprof().arg("report").arg(&sw).output().expect("spawn");
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("issue-slot breakdown"), "{text}");
    assert!(text.contains("stall: weaver"), "{text}");
    assert!(text.contains("latency histograms"), "{text}");
    let out = swprof()
        .arg("report")
        .arg(&sw)
        .arg("--json")
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(0));
    let line = String::from_utf8_lossy(&out.stdout);
    assert!(line.trim_end().starts_with('{') && line.trim_end().ends_with('}'));
    assert!(line.contains("\"totals.stalls.weaver\":"));

    // Self-diff: byte-identical artifacts, nothing changes, exit 0.
    let out = swprof()
        .arg("diff")
        .arg(&sw)
        .arg(&sw)
        .output()
        .expect("spawn");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("no metric changed"));

    // S_wm -> SparseWeaver shifts the stall composition toward the
    // memory/weaver categories: the strict gate flags it, exit 1.
    let out = swprof()
        .arg("diff")
        .arg(&wm)
        .arg(&sw)
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("totals.stalls.weaver"), "{text}");
    assert!(text.contains("REGRESSED"), "{text}");
    assert!(text.contains("improved"), "{text}");

    // A non-profile document is rejected with exit 1.
    let bogus = dir.join("bogus.json");
    std::fs::write(&bogus, "{\"schema\":\"something-else\"}\n").unwrap();
    let out = swprof().arg("report").arg(&bogus).output().expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn swprof_selftest_is_healthy_and_usage_errors_exit_2() {
    let out = swprof().arg("--selftest").output().expect("spawn");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("healthy"));

    let out = swprof().arg("--version").output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("swprof "));

    for args in [
        &["frobnicate"] as &[&str],
        &["report"],
        &["diff", "only-one.json"],
        &["report", "a.json", "--bogus"],
    ] {
        let out = swprof().args(args).output().expect("spawn");
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {:?} stderr: {}",
            args,
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

/// An interrupted `swsim run` (via the deterministic `--stop-after-launches`
/// bound) exits 5, writes a checkpoint, and `swsim resume` finishes the run
/// with metrics bytes identical to an uninterrupted golden run.
#[test]
fn swsim_checkpoint_stop_and_resume_is_byte_identical() {
    let dir = std::env::temp_dir().join("swsim_cli_ckpt_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let ck = dir.join("run.swckpt");
    let golden = dir.join("golden.json");
    let resumed = dir.join("resumed.json");
    let base = [
        "run",
        "--gen",
        "powerlaw:48:240:1.8:7",
        "--algo",
        "pr",
        "--iters",
        "3",
        "--schedule",
        "sw",
        "--config",
        "small",
    ];

    let out = swsim()
        .args(base)
        .args(["--metrics-out", golden.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "golden: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = swsim()
        .args(base)
        .args([
            "--checkpoint-out",
            ck.to_str().unwrap(),
            "--checkpoint-every",
            "1",
            "--stop-after-launches",
            "2",
            "--metrics-out",
            resumed.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert_eq!(
        out.status.code(),
        Some(5),
        "interrupted run must exit 5; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(ck.exists(), "checkpoint file must exist after the stop");
    assert!(
        !resumed.exists(),
        "an interrupted run must not publish a metrics artifact"
    );

    let out = swsim()
        .args(["resume", ck.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "resume: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let a = std::fs::read(&golden).unwrap();
    let b = std::fs::read(&resumed).unwrap();
    assert_eq!(a, b, "resumed metrics must be byte-identical to golden");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Checkpoint flag combinations that cannot work are usage errors (exit 2),
/// and resuming from garbage is a run error (exit 1), not a panic.
#[test]
fn swsim_checkpoint_flag_gates_and_corrupt_checkpoint() {
    let dir = std::env::temp_dir().join("swsim_cli_ckpt_gate_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let base = ["run", "--gen", "uniform:24:72:3", "--algo", "bfs"];
    for extra in [
        &["--checkpoint-every", "4"] as &[&str],
        &["--checkpoint-out", "-"],
        &["--checkpoint-out", "x.swckpt", "--all-schedules"],
    ] {
        let out = swsim().args(base).args(extra).output().expect("spawn");
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {:?} stderr: {}",
            extra,
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let bogus = dir.join("bogus.swckpt");
    std::fs::write(&bogus, b"not a checkpoint at all").unwrap();
    let out = swsim()
        .args(["resume", bogus.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("checkpoint"),
        "error must name the checkpoint: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `swfault --resume` without a journal is a usage error; an interrupted
/// journal resumed at a different `--jobs` renders the summary byte-identical
/// to the uninterrupted campaign.
#[test]
fn swfault_journal_resume_is_byte_identical() {
    let dir = std::env::temp_dir().join("swfault_cli_journal_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("campaign.jsonl");
    let base = [
        "--inject",
        "reg=0.002,mem=0.001",
        "--runs",
        "8",
        "--seed",
        "42",
    ];

    let out = swfault()
        .args(base)
        .arg("--resume")
        .output()
        .expect("spawn");
    assert_eq!(
        out.status.code(),
        Some(2),
        "--resume without --journal must be a usage error"
    );

    let out = swfault().args(base).output().expect("spawn");
    assert_eq!(out.status.code(), Some(0));
    let golden = out.stdout.clone();

    let out = swfault()
        .args(base)
        .args(["--journal", journal.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(out.stdout, golden, "a journaled campaign changes no bytes");

    // Simulate a kill by dropping the last 4 completed-run records.
    let text = std::fs::read_to_string(&journal).unwrap();
    let keep: Vec<&str> = text.lines().take(5).collect();
    std::fs::write(&journal, format!("{}\n", keep.join("\n"))).unwrap();

    let out = swfault()
        .args(base)
        .args(["--journal", journal.to_str().unwrap(), "--resume"])
        .args(["--jobs", "4"])
        .output()
        .expect("spawn");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        out.stdout, golden,
        "resumed summary must be byte-identical at any --jobs"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
