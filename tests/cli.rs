//! End-to-end tests of the `swsim` CLI binary.

use std::process::Command;

fn swsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_swsim"))
}

#[test]
fn datasets_lists_all_nine() {
    let out = swsim().arg("datasets").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for id in [
        "D_bh", "D_bm", "D_rn", "D_rc", "D_g500", "D_co", "D_hw", "D_uk", "D_wk",
    ] {
        assert!(text.contains(id), "missing {id}");
    }
}

#[test]
fn run_json_emits_parseable_record() {
    let out = swsim()
        .args([
            "run",
            "--gen",
            "uniform:60:240:3",
            "--algo",
            "pr",
            "--schedule",
            "sw",
            "--config",
            "small",
            "--iters",
            "2",
            "--json",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let line = text.lines().next().expect("one json line");
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    assert!(line.contains("\"schedule\":\"SparseWeaver\""));
    assert!(line.contains("\"cycles\":"));
}

#[test]
fn gen_then_run_round_trips_through_a_file() {
    let dir = std::env::temp_dir().join("swsim_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("g.el");
    let out = swsim()
        .args(["gen", "--gen", "powerlaw:50:300:1.8:4", "-o"])
        .arg(&path)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = swsim()
        .args(["run", "--graph"])
        .arg(&path)
        .args(["--algo", "bfs", "--schedule", "svm", "--config", "small"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("S_vm"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn disasm_prints_fig9_structure() {
    let out = swsim()
        .args(["disasm", "--schedule", "sw", "--config", "small"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("weaver.reg"));
    assert!(text.contains("weaver.dec.id"));
    assert!(text.contains("weaver.dec.loc"));
    assert!(text.contains("bar"));
    assert!(text.contains("tmc"));
}

#[test]
fn all_schedules_flag_runs_the_whole_set() {
    let out = swsim()
        .args([
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "cc",
            "--all-schedules",
            "--config",
            "small",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for s in [
        "S_vm",
        "S_em",
        "S_wm",
        "S_cm",
        "S_twc",
        "SparseWeaver",
        "EGHW",
    ] {
        assert!(text.contains(s), "missing {s}");
    }
}

#[test]
fn unknown_arguments_fail_with_usage() {
    let out = swsim().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn version_flag_prints_version_and_succeeds() {
    for flag in ["--version", "-V"] {
        let out = swsim().arg(flag).output().expect("spawn");
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(
            text.starts_with("swsim ") && text.contains(env!("CARGO_PKG_VERSION")),
            "{text}"
        );
    }
}

/// Every bad flag combination must exit with code 2, not succeed, not panic.
#[test]
fn bad_flag_combinations_exit_with_code_2() {
    let cases: &[&[&str]] = &[
        // Unknown flag for the subcommand.
        &[
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "pr",
            "--schedule",
            "sw",
            "--bogus",
        ],
        &["datasets", "--algo", "pr"],
        // Conflicting graph sources.
        &[
            "run",
            "--gen",
            "uniform:40:160:1",
            "--dataset",
            "D_hw",
            "--algo",
            "pr",
            "--schedule",
            "sw",
        ],
        // --schedule with --all-schedules.
        &[
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "pr",
            "--schedule",
            "sw",
            "--all-schedules",
        ],
        // Trace modifiers without tracing.
        &[
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "pr",
            "--schedule",
            "sw",
            "--trace-level",
            "all",
        ],
        &[
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "pr",
            "--schedule",
            "sw",
            "--sample-every",
            "100",
        ],
        // Tracing across all schedules is not a single timeline.
        &[
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "pr",
            "--all-schedules",
            "--trace",
            "/tmp/t.json",
        ],
        // Bad numerics and bad level.
        &[
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "pr",
            "--schedule",
            "sw",
            "--iters",
            "lots",
        ],
        &[
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "pr",
            "--schedule",
            "sw",
            "--trace",
            "/tmp/t.json",
            "--sample-every",
            "soon",
        ],
        &[
            "run",
            "--gen",
            "uniform:40:160:1",
            "--algo",
            "pr",
            "--schedule",
            "sw",
            "--trace",
            "/tmp/t.json",
            "--trace-level",
            "everything",
        ],
    ];
    for args in cases {
        let out = swsim().args(*args).output().expect("spawn");
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {:?} stderr: {}",
            args,
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn trace_flags_write_both_output_files() {
    let dir = std::env::temp_dir().join("swsim_cli_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("out.trace.json");
    let metrics = dir.join("metrics.json");
    let out = swsim()
        .args([
            "run",
            "--gen",
            "uniform:60:240:3",
            "--algo",
            "bfs",
            "--schedule",
            "sw",
            "--config",
            "small",
            "--trace",
        ])
        .arg(&trace)
        .args([
            "--trace-level",
            "all",
            "--sample-every",
            "200",
            "--metrics-out",
        ])
        .arg(&metrics)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let trace_body = std::fs::read_to_string(&trace).unwrap();
    assert!(trace_body.contains("\"traceEvents\""));
    let metrics_body = std::fs::read_to_string(&metrics).unwrap();
    assert!(metrics_body.contains("\"schema\":\"sparseweaver-metrics-v1\""));
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&metrics);
}
