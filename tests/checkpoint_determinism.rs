//! Checkpoint round-trip determinism: an interrupted run resumed from a
//! `swckpt-v1` snapshot must be **bit-identical** to the uninterrupted
//! run — same stats, same metrics-JSON bytes — across every algorithm,
//! both hardware-assisted schedules, and with the idle-cycle
//! fast-forward engine on or off. The rejection matrix mirrors the
//! `MemTraceError` style from the memory-trace codec: every way a
//! checkpoint file can be damaged maps to a typed error, never a panic
//! or a silently wrong resume.

use sparseweaver::core::algorithms::{Algorithm, Bfs, ConnectedComponents, PageRank, Spmv, Sssp};
use sparseweaver::core::checkpoint::{Checkpoint, CheckpointError};
use sparseweaver::core::runtime::CheckpointCtl;
use sparseweaver::core::{FrameworkError, Schedule, Session};
use sparseweaver::graph::generators;
use sparseweaver::sim::GpuConfig;
use sparseweaver::trace::export;
use sparseweaver::trace::TraceConfig;

/// Runs `algo` to completion, then re-runs it with a mid-run stop at a
/// launch boundary, resumes from the written checkpoint, and asserts the
/// resumed run is indistinguishable from the golden one.
fn assert_round_trip(algo: &dyn Algorithm, tag: &str, schedule: Schedule, fast_forward: bool) {
    let g = generators::powerlaw(40, 200, 2.0, 7);
    let mut s = Session::new(GpuConfig::small_test());
    s.trace = Some(TraceConfig::default());
    s.fast_forward = fast_forward;
    let golden = s
        .run(&g, algo, schedule)
        .unwrap_or_else(|e| panic!("golden {tag}: {e}"));
    let golden_metrics = export::metrics_json(golden.trace.as_ref().unwrap());
    let launches = golden.per_kernel.len() as u64;

    let path = std::env::temp_dir().join(format!(
        "sw_ckpt_det_{tag}_{}_ff{fast_forward}.swckpt",
        schedule.stable_id()
    ));
    let _ = std::fs::remove_file(&path);
    let mut s2 = s.clone();
    // Stop halfway through the launch sequence (single-launch algorithms
    // stop at the final boundary — the host epilogue still runs on resume).
    s2.checkpoint = Some(CheckpointCtl {
        out: Some(path.clone()),
        every: 1,
        stop_after_launches: Some((launches / 2).max(1)),
        ..CheckpointCtl::default()
    });
    match s2.run(&g, algo, schedule) {
        Err(FrameworkError::Interrupted { .. }) => {}
        other => panic!("{tag}: expected an interrupted run, got {other:?}"),
    }
    let ck = Checkpoint::load(&path).unwrap_or_else(|e| panic!("{tag}: load: {e}"));
    assert_eq!(ck.launches, (launches / 2).max(1), "{tag}: stop boundary");
    s2.checkpoint.as_mut().unwrap().stop_after_launches = None;
    let resumed = s2
        .resume(&g, algo, &ck)
        .unwrap_or_else(|e| panic!("resume {tag}: {e}"));

    assert_eq!(golden.stats, resumed.stats, "{tag}: stats");
    assert_eq!(golden.per_kernel, resumed.per_kernel, "{tag}: per-kernel");
    assert_eq!(golden.cycles, resumed.cycles, "{tag}: cycles");
    assert!(
        golden.output.approx_eq(&resumed.output, 0.0),
        "{tag}: output drifted"
    );
    let resumed_metrics = export::metrics_json(resumed.trace.as_ref().unwrap());
    assert_eq!(
        golden_metrics, resumed_metrics,
        "{tag}: metrics bytes differ"
    );
    let _ = std::fs::remove_file(&path);
}

/// All 5 algorithms × both hardware-assisted schedules × fast-forward
/// on/off: 20 save→restore round trips, each proven bit-identical.
#[test]
fn save_restore_is_bit_identical_across_the_matrix() {
    let algos: Vec<(Box<dyn Algorithm>, &str)> = vec![
        (Box::new(Bfs::new(0)), "bfs"),
        (Box::new(PageRank::new(3)), "pr"),
        (Box::new(Sssp::new(0)), "sssp"),
        (Box::new(ConnectedComponents::new()), "cc"),
        (Box::new(Spmv::new()), "spmv"),
    ];
    for (algo, tag) in &algos {
        for schedule in [Schedule::SparseWeaver, Schedule::Eghw] {
            for fast_forward in [true, false] {
                assert_round_trip(algo.as_ref(), tag, schedule, fast_forward);
            }
        }
    }
}

/// Fast-forward is a pure accelerator: a checkpoint taken with it on can
/// seed a resume with it off (and vice versa) without changing a byte.
#[test]
fn fast_forward_setting_does_not_leak_into_checkpoints() {
    let g = generators::powerlaw(40, 200, 2.0, 7);
    let algo = PageRank::new(3);
    let mut s = Session::new(GpuConfig::small_test());
    s.fast_forward = true;
    let golden = s.run(&g, &algo, Schedule::SparseWeaver).unwrap();

    let path = std::env::temp_dir().join("sw_ckpt_det_ff_cross.swckpt");
    let _ = std::fs::remove_file(&path);
    let mut s2 = s.clone();
    s2.checkpoint = Some(CheckpointCtl {
        out: Some(path.clone()),
        every: 1,
        stop_after_launches: Some(2),
        ..CheckpointCtl::default()
    });
    match s2.run(&g, &algo, Schedule::SparseWeaver) {
        Err(FrameworkError::Interrupted { .. }) => {}
        other => panic!("expected an interrupted run, got {other:?}"),
    }
    let ck = Checkpoint::load(&path).unwrap();
    s2.checkpoint = None;
    s2.fast_forward = false; // checkpointed with it on, resume with it off
    let resumed = s2.resume(&g, &algo, &ck).unwrap();
    assert_eq!(golden.stats, resumed.stats);
    assert_eq!(golden.cycles, resumed.cycles);
    assert!(golden.output.approx_eq(&resumed.output, 0.0));
    let _ = std::fs::remove_file(&path);
}

/// Writes one valid checkpoint the corruption cases below can mutilate.
fn valid_checkpoint_bytes() -> Vec<u8> {
    let g = generators::uniform(30, 90, 11);
    let algo = Bfs::new(0);
    let path = std::env::temp_dir().join("sw_ckpt_det_corrupt_seed.swckpt");
    let _ = std::fs::remove_file(&path);
    let mut s = Session::new(GpuConfig::small_test());
    s.checkpoint = Some(CheckpointCtl {
        out: Some(path.clone()),
        every: 1,
        stop_after_launches: Some(1),
        ..CheckpointCtl::default()
    });
    match s.run(&g, &algo, Schedule::SparseWeaver) {
        Err(FrameworkError::Interrupted { .. }) => {}
        other => panic!("expected an interrupted run, got {other:?}"),
    }
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    bytes
}

/// The rejection matrix: every damaged variant of a real checkpoint is
/// refused with a typed [`CheckpointError`] — decode never panics and
/// never hands back a half-restored machine.
#[test]
fn corrupt_and_truncated_checkpoints_are_rejected() {
    let bytes = valid_checkpoint_bytes();
    assert!(Checkpoint::decode(&bytes).is_ok(), "seed must decode");

    // Empty / short / foreign files: not a checkpoint at all.
    assert!(matches!(
        Checkpoint::decode(b""),
        Err(CheckpointError::BadMagic)
    ));
    assert!(matches!(
        Checkpoint::decode(b"swck"),
        Err(CheckpointError::BadMagic)
    ));
    assert!(matches!(
        Checkpoint::decode(b"this is not a checkpoint file at all"),
        Err(CheckpointError::BadMagic)
    ));

    // A flipped magic byte.
    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0x20;
    assert!(matches!(
        Checkpoint::decode(&bad_magic),
        Err(CheckpointError::BadMagic)
    ));

    // An unknown (future) format version.
    let magic_len = b"swckpt-v1".len();
    let mut bad_version = bytes.clone();
    bad_version[magic_len..magic_len + 4].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        Checkpoint::decode(&bad_version),
        Err(CheckpointError::BadVersion { found: 99 })
    ));

    // Every truncation point after the header: Truncated or Corrupt,
    // never Ok and never a panic.
    for cut in (magic_len + 4..bytes.len()).step_by(97) {
        match Checkpoint::decode(&bytes[..cut]) {
            Err(CheckpointError::Truncated { .. } | CheckpointError::Corrupt { .. }) => {}
            Err(e) => panic!("cut at {cut}: unexpected error class {e}"),
            Ok(_) => panic!("cut at {cut}: truncated checkpoint decoded"),
        }
    }
    // Dropping the final byte (a torn tail write) is caught too.
    match Checkpoint::decode(&bytes[..bytes.len() - 1]) {
        Err(CheckpointError::Truncated { .. } | CheckpointError::Corrupt { .. }) => {}
        other => panic!("torn tail: {other:?}"),
    }

    // Trailing garbage after a well-formed payload.
    let mut padded = bytes.clone();
    padded.extend_from_slice(b"junk");
    assert!(matches!(
        Checkpoint::decode(&padded),
        Err(CheckpointError::Corrupt { .. })
    ));
}

/// `Checkpoint::load` routes missing files through the typed I/O error —
/// the CLI turns this into exit 1 with a readable message.
#[test]
fn loading_a_missing_checkpoint_is_a_typed_io_error() {
    let path = std::env::temp_dir().join("sw_ckpt_det_missing.swckpt");
    let _ = std::fs::remove_file(&path);
    match Checkpoint::load(&path) {
        Err(CheckpointError::Io { .. }) => {}
        other => panic!("expected a typed I/O error, got {other:?}"),
    }
}
