//! The memory-trace capture/replay determinism contract, end to end:
//!
//! - For every algorithm under both hardware schedules, a capture taken
//!   with `Session::mem_trace_out` replays bit-identically: the replayed
//!   [`LevelStats`] (including DRAM counters) equal the live run's, and
//!   the live footer equals the report's accumulated memory stats.
//! - Idle-cycle fast-forward is invisible to the capture: with it on or
//!   off the trace files are byte-identical.
//! - Cache sweeps are jobs-invariant: `--jobs 1` and `--jobs 8` render
//!   byte-identical `replay.json` artifacts.
//!
//! See `docs/performance.md` for the swmtrace-v1 format and the
//! invariants behind these claims.

use sparseweaver::core::algorithms::{Algorithm, Bfs, ConnectedComponents, PageRank, Spmv, Sssp};
use sparseweaver::core::replay::{render, sweep, trace_fingerprint, SweepSpec};
use sparseweaver::core::{Schedule, Session};
use sparseweaver::graph::generators;
use sparseweaver::mem::mtrace::parse;
use sparseweaver::mem::replay::verify;
use sparseweaver::sim::GpuConfig;

fn algorithms() -> Vec<Box<dyn Algorithm>> {
    vec![
        Box::new(Bfs::new(0)),
        Box::new(Sssp::new(0)),
        Box::new(PageRank::new(2)),
        Box::new(ConnectedComponents::new()),
        Box::new(Spmv::new()),
    ]
}

/// Captures one run to a temp file and returns `(trace bytes, report)`.
fn capture(
    g: &sparseweaver::graph::Csr,
    cfg: GpuConfig,
    algo: &dyn Algorithm,
    schedule: Schedule,
    fast_forward: bool,
    tag: &str,
) -> (Vec<u8>, sparseweaver::core::RunReport) {
    let path = std::env::temp_dir().join(format!("sw_replay_{tag}.swmtrace"));
    let mut s = Session::new(cfg);
    s.fast_forward = fast_forward;
    s.mem_trace_out = Some(path.clone());
    let report = s.run(g, algo, schedule).expect("run");
    let mt = report.mem_trace.as_ref().expect("capture summary");
    assert_eq!(mt.sink_error, None, "capture must be complete");
    let bytes = std::fs::read(&path).expect("trace file");
    let _ = std::fs::remove_file(&path);
    assert_eq!(mt.bytes, bytes.len() as u64, "summary byte count");
    (bytes, report)
}

#[test]
fn capture_replays_bit_identically_for_every_algorithm_and_schedule() {
    let g = generators::with_random_weights(&generators::powerlaw(120, 720, 1.9, 5), 32, 1);
    let cfg = GpuConfig::small_test();
    for schedule in [Schedule::SparseWeaver, Schedule::Swm] {
        for algo in algorithms() {
            let label = format!("{} under {:?}", algo.name(), schedule);
            let tag = format!("{}_{:?}", algo.name(), schedule);
            let (bytes, report) = capture(&g, cfg, algo.as_ref(), schedule, true, &tag);
            let trace = parse(&bytes).unwrap_or_else(|e| panic!("{label}: {e}"));
            let outcome = verify(&trace).expect("capture config is valid");
            assert!(
                outcome.matches(),
                "{label}: replay diverged\n  live:     {:?}\n  replayed: {:?}",
                outcome.live,
                outcome.replayed
            );
            // The footer is the live hierarchy's cumulative stats, which
            // must equal the report's accumulated per-launch deltas.
            assert_eq!(
                outcome.live, report.stats.mem,
                "{label}: footer stats differ from the report's"
            );
            let (kernels, accesses, _, _, _) = trace.counts();
            assert!(kernels > 0, "{label}: no kernel launches recorded");
            assert!(accesses > 0, "{label}: no accesses recorded");
        }
    }
}

#[test]
fn fast_forward_is_invisible_to_the_capture() {
    let g = generators::with_random_weights(&generators::powerlaw(100, 600, 1.9, 3), 32, 2);
    let cfg = GpuConfig::small_test();
    for algo in [
        Box::new(Bfs::new(0)) as Box<dyn Algorithm>,
        Box::new(Spmv::new()),
    ] {
        let (on, _) = capture(
            &g,
            cfg,
            algo.as_ref(),
            Schedule::SparseWeaver,
            true,
            "ff_on",
        );
        let (off, _) = capture(
            &g,
            cfg,
            algo.as_ref(),
            Schedule::SparseWeaver,
            false,
            "ff_off",
        );
        assert_eq!(
            on,
            off,
            "{}: fast-forward changed the trace bytes",
            algo.name()
        );
    }
}

#[test]
fn sweep_artifact_is_byte_identical_across_jobs() {
    let g = generators::with_random_weights(&generators::powerlaw(120, 720, 1.9, 5), 32, 1);
    let cfg = GpuConfig::small_test();
    let (bytes, _) = capture(
        &g,
        cfg,
        &Bfs::new(0),
        Schedule::SparseWeaver,
        true,
        "sweep_jobs",
    );
    let trace = parse(&bytes).expect("well-formed");
    let fp = trace_fingerprint(&bytes);
    let run = |jobs: usize| {
        let spec = SweepSpec {
            l1_sizes: vec![1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072],
            ways: vec![2, 4],
            jobs,
        };
        let result = sweep(&trace, fp, &spec).expect("sweep");
        assert!(result.verified(), "jobs={jobs}: capture self-check failed");
        render(&result, &trace)
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial, parallel, "replay.json must be jobs-invariant");
    assert_eq!(serial.matches("\"label\"").count(), 16, "16 grid points");
}
