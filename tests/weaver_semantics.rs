//! Integration tests of the SparseWeaver-specific semantics: skip
//! signals, chunked registration, the thread-mask backend optimization,
//! table-latency concealment, and the filtered-registration path.

use sparseweaver::core::algorithms::{Algorithm, Bfs, PageRank};
use sparseweaver::core::{Schedule, Session};
use sparseweaver::graph::{generators, Csr};
use sparseweaver::sim::GpuConfig;

fn skewed() -> Csr {
    generators::with_random_weights(&generators::powerlaw(150, 900, 1.9, 23), 32, 5)
}

#[test]
fn auto_mask_ablation_is_functionally_identical() {
    // The backend's hardware thread-mask optimization must not change
    // results — only (slightly) the cycle count.
    let g = skewed();
    let algo = PageRank::new(3);
    let reference = algo.reference(&g);
    let mut on = Session::new(GpuConfig::small_test());
    let mut off_cfg = GpuConfig::small_test();
    off_cfg.weaver.auto_mask = false;
    let mut off = Session::new(off_cfg);
    let r_on = on.run(&g, &algo, Schedule::SparseWeaver).unwrap();
    let r_off = off.run(&g, &algo, Schedule::SparseWeaver).unwrap();
    assert!(r_on.output.approx_eq(&reference, 1e-9));
    assert!(r_off.output.approx_eq(&reference, 1e-9));
    // The software fallback pays split/join divergence control.
    assert!(
        r_off.stats.instructions > r_on.stats.instructions,
        "mask off {} should issue more than mask on {}",
        r_off.stats.instructions,
        r_on.stats.instructions
    );
}

#[test]
fn st_capacity_sweep_preserves_results() {
    // Tiny tables force many chunked registration rounds; results must
    // not depend on the chunking.
    let g = skewed();
    let algo = PageRank::new(2);
    let reference = algo.reference(&g);
    let mut cycles = Vec::new();
    for cap in [4usize, 8, 16, 64] {
        let mut cfg = GpuConfig::small_test();
        cfg.weaver.st_capacity = cap;
        let mut s = Session::new(cfg);
        let r = s.run(&g, &algo, Schedule::SparseWeaver).unwrap();
        assert!(
            r.output.approx_eq(&reference, 1e-9),
            "st_capacity {cap} diverged"
        );
        cycles.push((cap, r.cycles));
    }
    // Smaller tables mean more rounds and more barriers: monotonically
    // (weakly) more cycles as capacity shrinks.
    assert!(
        cycles[0].1 > cycles[3].1,
        "4-entry ST {:?} should be slower than 64-entry {:?}",
        cycles[0],
        cycles[3]
    );
}

#[test]
fn bfs_skip_reduces_edge_work_on_supernode() {
    // A star graph where the supernode is reached at level 1: WEAVER_SKIP
    // must stop decoding the hub once its parent is found.
    let mut edges = Vec::new();
    for v in 1..200u32 {
        edges.push((0, v));
        edges.push((v, 0));
    }
    let g = Csr::from_edges(200, &edges);
    let bfs = Bfs::new(1);
    let reference = bfs.reference(&g);
    let mut s = Session::new(GpuConfig::small_test());
    let r = s.run(&g, &bfs, Schedule::SparseWeaver).unwrap();
    assert!(r.output.approx_eq(&reference, 0.0));
    // The hub has 199 in-edges but needs only a handful of work items
    // before the skip lands; the weaver counters must show far fewer
    // decode requests than a full drain would need.
    let (_, decs, _) = r.stats.weaver_counters;
    assert!(
        decs < 500,
        "skip should keep decode requests low, got {decs}"
    );
}

#[test]
fn table_latency_is_concealed_by_the_pipeline() {
    // Fig. 13's property as a test: 16x the table latency must cost far
    // less than 16x the cycles.
    // Latency hiding needs warp-level parallelism: use the paper's
    // 32-warps-per-core shape (this is exactly why Fig. 13 is flat on the
    // real configuration but would not be on a 4-warp toy).
    let g = skewed();
    let run = |lat: u64| {
        let mut cfg = GpuConfig::small_test();
        cfg.warps_per_core = 32;
        // Size the register file for the enlarged machine, like the
        // vortex preset does — otherwise the occupancy cap parks most
        // of the warps this test exists to exercise.
        cfg.regs_per_core = sparseweaver::isa::NUM_REGS * cfg.warps_per_core;
        cfg.weaver.table_latency = lat;
        let mut s = Session::new(cfg);
        s.run(&g, &PageRank::new(3), Schedule::SparseWeaver)
            .unwrap()
            .cycles
    };
    let fast = run(10);
    let slow = run(160);
    assert!(
        (slow as f64) < (fast as f64) * 1.6,
        "16x table latency cost {:.2}x cycles — not concealed",
        slow as f64 / fast as f64
    );
}

#[test]
fn weaver_counters_match_graph_size() {
    // PR has no filters: every vertex registers once per gather launch
    // and every edge is decoded exactly once.
    let g = skewed();
    let mut s = Session::new(GpuConfig::small_test());
    let iters = 3u64;
    let r = s
        .run(&g, &PageRank::new(iters as u32), Schedule::SparseWeaver)
        .unwrap();
    let (_, _, regs) = r.stats.weaver_counters;
    assert_eq!(regs, iters * g.num_vertices() as u64);
}

#[test]
fn eghw_slower_than_weaver_on_memory_bound_gather() {
    // Case Study 1's direction as an invariant: the unit that does its
    // own memory accesses cannot beat the pipelined one.
    let g = skewed();
    let mut s = Session::new(GpuConfig::small_test());
    let sw = s
        .run(&g, &PageRank::new(3), Schedule::SparseWeaver)
        .unwrap();
    let eghw = s.run(&g, &PageRank::new(3), Schedule::Eghw).unwrap();
    assert!(
        eghw.cycles > sw.cycles,
        "EGHW {} should be slower than SparseWeaver {}",
        eghw.cycles,
        sw.cycles
    );
}

#[test]
fn l1_penalty_costs_cycles_but_not_correctness() {
    let g = skewed();
    let algo = PageRank::new(3);
    let reference = algo.reference(&g);
    let mut with = Session::new(GpuConfig::small_test());
    with.l1_penalty = true;
    let mut without = Session::new(GpuConfig::small_test());
    without.l1_penalty = false;
    let a = with.run(&g, &algo, Schedule::SparseWeaver).unwrap();
    let b = without.run(&g, &algo, Schedule::SparseWeaver).unwrap();
    assert!(a.output.approx_eq(&reference, 1e-9));
    assert!(b.output.approx_eq(&reference, 1e-9));
    assert!(
        a.cycles >= b.cycles,
        "halving the L1 cannot speed things up"
    );
}

#[test]
fn push_and_pull_pagerank_agree() {
    use sparseweaver::graph::Direction;
    let g = skewed(); // symmetric, so push and pull see the same edges
    let pull = PageRank::new(3);
    let push = PageRank::new(3).with_direction(Direction::Push);
    let mut s = Session::new(GpuConfig::small_test());
    for schedule in [Schedule::Svm, Schedule::SparseWeaver] {
        let a = s.run(&g, &pull, schedule).unwrap();
        let b = s.run(&g, &push, schedule).unwrap();
        assert!(
            a.output.approx_eq(&b.output, 1e-9),
            "push/pull disagree under {schedule}"
        );
    }
}
