//! Structural tests on the compiled kernels: the templates must exhibit
//! the Table I characteristics (synchronization counts, binary searches,
//! Weaver instruction usage) and always produce balanced divergence
//! control.

use sparseweaver::core::compiler::{build_gather_kernel, EdgeRegs, GatherOps};
use sparseweaver::core::Schedule;
use sparseweaver::isa::{Asm, AtomOp, Instr, Program, Reg};
use sparseweaver::sim::GpuConfig;

struct CountOps;

impl GatherOps for CountOps {
    fn emit_pro(&self, a: &mut Asm) -> Vec<Reg> {
        let r = a.reg();
        a.ldarg(r, 8);
        vec![r]
    }

    fn emit_compute(&self, a: &mut Asm, pro: &[Reg], e: &EdgeRegs, _x: bool) {
        let addr = a.reg();
        let one = a.reg();
        let old = a.reg();
        a.slli(addr, e.base, 3);
        a.add(addr, addr, pro[0]);
        a.li(one, 1);
        a.atom(AtomOp::Add, old, addr, one);
        a.free(old);
        a.free(one);
        a.free(addr);
    }
}

fn kernel(s: Schedule) -> Program {
    build_gather_kernel("t", &CountOps, s, &GpuConfig::small_test())
}

fn count(p: &Program, pred: impl Fn(&Instr) -> bool) -> usize {
    p.instrs().iter().filter(|i| pred(i)).count()
}

#[test]
fn splits_and_joins_are_balanced() {
    for s in Schedule::ALL {
        let p = kernel(s);
        let splits = count(&p, |i| matches!(i, Instr::Split { .. }));
        let joins = count(&p, |i| matches!(i, Instr::Join));
        // if_nonzero emits one join; if_else two. Joins >= splits always.
        assert!(joins >= splits, "{s}: {splits} splits vs {joins} joins");
        assert!(splits > 0, "{s}: templates always predicate something");
    }
}

#[test]
fn split_targets_stay_in_bounds() {
    for s in Schedule::ALL {
        let p = kernel(s);
        for (pc, i) in p.instrs().iter().enumerate() {
            if let Instr::Split {
                else_target,
                end_target,
                ..
            } = i
            {
                assert!((*else_target as usize) <= p.len(), "{s} pc {pc}");
                assert!((*end_target as usize) <= p.len(), "{s} pc {pc}");
                assert!(else_target <= end_target, "{s} pc {pc}");
            }
        }
    }
}

#[test]
fn table_i_synchronization_counts() {
    // S_vm / S_em: no synchronization at all.
    for s in [Schedule::Svm, Schedule::Sem] {
        assert_eq!(count(&kernel(s), |i| matches!(i, Instr::Bar)), 0, "{s}");
    }
    // S_wm: warp-synchronous — no core barriers either (Table I's one
    // sync is the implicit warp lockstep).
    assert_eq!(
        count(&kernel(Schedule::Swm), |i| matches!(i, Instr::Bar)),
        0
    );
    // S_cm: block-level scan needs barrier-separated steps — Table I
    // charges it 17 syncs; our 16-thread test core does 2*log2(16)+2 = 10,
    // and the paper's 1024-thread block does 2*log2(1024)+2 = 22.
    let n: usize = GpuConfig::small_test().threads_per_core();
    let expected = 2 * n.trailing_zeros() as usize + 2;
    assert_eq!(
        count(&kernel(Schedule::Scm), |i| matches!(i, Instr::Bar)),
        expected
    );
    // S_twc: reset + post-classification + end-of-chunk barriers.
    assert_eq!(
        count(&kernel(Schedule::Stwc), |i| matches!(i, Instr::Bar)),
        3
    );
    // SparseWeaver: exactly one sync between registration and
    // distribution (plus one at the chunk boundary).
    assert_eq!(
        count(&kernel(Schedule::SparseWeaver), |i| matches!(i, Instr::Bar)),
        2
    );
}

#[test]
fn stwc_uses_shared_atomics_for_its_queues() {
    // The registration-stage atomics Table I charges the S_twc family.
    let p = kernel(Schedule::Stwc);
    let shared_atomics = count(&p, |i| {
        matches!(
            i,
            Instr::Atom {
                space: sparseweaver::isa::Space::Shared,
                ..
            }
        )
    });
    assert_eq!(shared_atomics, 2, "block-queue + warp-queue counters");
}

#[test]
fn weaver_kernels_use_the_full_isa() {
    let p = kernel(Schedule::SparseWeaver);
    assert_eq!(count(&p, |i| matches!(i, Instr::WeaverReg { .. })), 1);
    assert_eq!(count(&p, |i| matches!(i, Instr::WeaverDecId { .. })), 1);
    assert_eq!(count(&p, |i| matches!(i, Instr::WeaverDecLoc { .. })), 1);
    // The thread-mask restore from the backend pass.
    assert_eq!(count(&p, |i| matches!(i, Instr::Tmc { .. })), 1);
}

#[test]
fn software_schemes_never_emit_weaver_instructions() {
    for s in [
        Schedule::Svm,
        Schedule::Sem,
        Schedule::Swm,
        Schedule::Scm,
        Schedule::Stwc,
    ] {
        assert_eq!(kernel(s).weaver_instr_count(), 0, "{s}");
    }
}

#[test]
fn wm_and_cm_emit_binary_searches() {
    // log2(n)+1 shared loads inside the distribution loop: compare shared
    // load counts between a search-based scheme and S_em.
    let shared_loads = |s: Schedule| {
        count(&kernel(s), |i| {
            matches!(
                i,
                Instr::Ld {
                    space: sparseweaver::isa::Space::Shared,
                    ..
                }
            )
        })
    };
    assert_eq!(shared_loads(Schedule::Sem), 0);
    assert!(shared_loads(Schedule::Swm) >= 5);
    assert!(shared_loads(Schedule::Scm) >= 7);
}

#[test]
fn eghw_reads_edges_from_staging_not_global() {
    let p = kernel(Schedule::Eghw);
    // The EGHW distribution loop must not load edge targets from global
    // memory (the unit staged them in shared memory).
    let global_loads = count(&p, |i| {
        matches!(
            i,
            Instr::Ld {
                space: sparseweaver::isa::Space::Global,
                ..
            }
        )
    });
    let shared_loads = count(&p, |i| {
        matches!(
            i,
            Instr::Ld {
                space: sparseweaver::isa::Space::Shared,
                ..
            }
        )
    });
    assert!(shared_loads >= 1, "staging read expected");
    // CountOps itself does no global loads, and EGHW skips getNeighbor,
    // so the kernel has none at all.
    assert_eq!(global_loads, 0);
}

#[test]
fn every_kernel_halts() {
    for s in Schedule::ALL {
        let p = kernel(s);
        assert!(
            matches!(p.instrs().last(), Some(Instr::Halt)),
            "{s} must end in halt"
        );
    }
}

#[test]
fn disassembly_is_complete() {
    for s in Schedule::ALL {
        let p = kernel(s);
        let text = p.to_string();
        assert_eq!(text.lines().count(), p.len() + 1, "{s}: header + 1/instr");
    }
}
