//! Cross-validation of the coalescing advisor (SW-L521/SW-L522) against
//! the simulator's measured memory behaviour.
//!
//! The advisor is a *static* prediction: from the abstract lane-affinity
//! of an address register it estimates how many cache-line fills a warp's
//! access costs. This test checks the prediction against ground truth —
//! two kernels that differ only in lane stride run on the same machine
//! with a latency profiler attached, and the kernel the advisor calls
//! coalesced must be measurably cheaper (fewer DRAM line fills, lower
//! mean request latency) than the one it flags for replay.

use sparseweaver::isa::{Asm, CsrKind, Program, Width};
use sparseweaver::lint::{analyze, AnalyzeGeom};
use sparseweaver::sim::{Gpu, GpuConfig};
use sparseweaver::trace::ProfileHandle;

/// Loads per thread; each round starts past every line the previous one
/// touched so no round rides the last one's fills.
const ROUNDS: i64 = 4;

/// A streaming kernel: every lane reads and writes `tid * stride`, so a
/// `stride` equal to the access width packs a warp into contiguous bytes
/// and a stride of a whole line gives every lane its own line.
fn strided_kernel(name: &str, stride: i64, total_threads: i64) -> Program {
    let mut a = Asm::new(name);
    let tid = a.reg();
    let addr = a.reg();
    let v = a.reg();
    let acc = a.reg();
    a.csr(tid, CsrKind::GlobalTid);
    a.muli(addr, tid, stride);
    a.li(acc, 0);
    let span = i32::try_from(total_threads * stride).expect("span fits an offset");
    for i in 0..ROUNDS {
        a.ldg(v, addr, i as i32 * span, Width::B8);
        a.add(acc, acc, v);
    }
    a.stg(acc, addr, 0, Width::B8);
    a.halt();
    a.finish()
}

fn geom_of(cfg: &GpuConfig) -> AnalyzeGeom {
    AnalyzeGeom {
        num_cores: cfg.num_cores as u64,
        warps_per_core: cfg.warps_per_core as u64,
        threads_per_warp: cfg.threads_per_warp as u64,
        shared_mem_bytes: cfg.shared_mem_bytes as u64,
    }
}

/// Runs `program` with a profiler and returns (DRAM fills, mean request
/// latency over every hierarchy level).
fn measure(cfg: GpuConfig, program: &Program) -> (u64, f64) {
    let mut g = Gpu::new(cfg);
    let p = ProfileHandle::new();
    g.set_profiler(Some(p.clone()));
    g.launch(program, &[]).expect("kernel runs clean");
    let report = p.report();
    let dram = report.mem[3].count;
    let (sum, count) = report
        .mem
        .iter()
        .fold((0u64, 0u64), |(s, c), h| (s + h.sum, c + h.count));
    assert!(count > 0, "profiler recorded no memory requests");
    (dram, sum as f64 / count as f64)
}

#[test]
fn advisor_prediction_matches_measured_fill_cost() {
    let cfg = GpuConfig::small_test();
    let geom = geom_of(&cfg);
    let threads = cfg.total_threads() as i64;
    let line = 64i64; // sparseweaver_mem::LINE_BYTES

    let coalesced = strided_kernel("coalesced_stream", 8, threads);
    let divergent = strided_kernel("divergent_stream", line, threads);

    // Static side: the advisor must call the dense kernel coalesced
    // (SW-L521, no replay advisory) and flag the line-strided one for
    // replay (SW-L522 naming its line-fill estimate).
    let coal_report = analyze(&coalesced, &geom);
    assert!(
        coal_report
            .diagnostics
            .iter()
            .any(|d| d.rule.id() == "SW-L521"),
        "coalesced kernel missing SW-L521:\n{}",
        coal_report.to_text()
    );
    assert!(
        !coal_report
            .diagnostics
            .iter()
            .any(|d| d.rule.id() == "SW-L522"),
        "coalesced kernel wrongly flagged for replay:\n{}",
        coal_report.to_text()
    );
    let div_report = analyze(&divergent, &geom);
    let replay = div_report
        .diagnostics
        .iter()
        .find(|d| d.rule.id() == "SW-L522")
        .unwrap_or_else(|| {
            panic!(
                "divergent kernel missing SW-L522:\n{}",
                div_report.to_text()
            )
        });
    assert!(
        replay.message.contains("line fill"),
        "replay advisory should estimate line fills: {}",
        replay.message
    );

    // Dynamic side: same machine, same request count per thread — the
    // kernel the advisor blessed must be measurably cheaper.
    let (coal_dram, coal_mean) = measure(cfg, &coalesced);
    let (div_dram, div_mean) = measure(cfg, &divergent);
    assert!(
        coal_dram < div_dram,
        "predicted-coalesced kernel should fill fewer DRAM lines: {coal_dram} vs {div_dram}"
    );
    assert!(
        coal_mean < div_mean,
        "predicted-coalesced kernel should have lower mean fill latency: \
         {coal_mean:.1} vs {div_mean:.1} cycles"
    );
}
