//! The reproduction's correctness oracle: every scheduling scheme must
//! produce the host-reference answer for every algorithm, on graphs from
//! each structural class.

use sparseweaver::core::algorithms::{Algorithm, Bfs, ConnectedComponents, PageRank, Spmv, Sssp};
use sparseweaver::core::{AlgoOutput, Schedule, Session};
use sparseweaver::graph::{generators, Csr};
use sparseweaver::sim::GpuConfig;

fn test_graphs() -> Vec<(&'static str, Csr)> {
    vec![
        (
            "powerlaw",
            generators::with_random_weights(&generators::powerlaw(120, 700, 1.9, 7), 32, 1),
        ),
        (
            "uniform",
            generators::with_random_weights(&generators::uniform(90, 360, 3), 32, 2),
        ),
        (
            "grid",
            generators::with_random_weights(&generators::road_grid(9, 9, 0.6, 0.05, 5), 32, 3),
        ),
        (
            "rmat",
            generators::with_random_weights(&generators::rmat(6, 220, 0.57, 0.19, 0.19, 9), 32, 4),
        ),
    ]
}

fn check_all_schedules(algo: &dyn Algorithm, tol: f64) {
    for (gname, g) in test_graphs() {
        let reference = algo.reference(&g);
        let mut session = Session::new(GpuConfig::small_test());
        for schedule in Schedule::ALL {
            let report = session
                .run(&g, algo, schedule)
                .unwrap_or_else(|e| panic!("{} on {gname} under {schedule}: {e}", algo.name()));
            assert_eq!(report.output.len(), reference.len());
            if let Some(i) = report.output.mismatch(&reference, tol) {
                let (got, want): (String, String) = match (&report.output, &reference) {
                    (AlgoOutput::F64(a), AlgoOutput::F64(b)) => {
                        (a[i].to_string(), b[i].to_string())
                    }
                    (AlgoOutput::U64(a), AlgoOutput::U64(b)) => {
                        (a[i].to_string(), b[i].to_string())
                    }
                    _ => ("type".into(), "mismatch".into()),
                };
                panic!(
                    "{} on {gname} under {schedule}: vertex {i} = {got}, reference {want}",
                    algo.name()
                );
            }
        }
    }
}

#[test]
fn pagerank_matches_reference_under_every_schedule() {
    check_all_schedules(&PageRank::new(3), 1e-9);
}

#[test]
fn bfs_matches_reference_under_every_schedule() {
    check_all_schedules(&Bfs::new(0), 0.0);
}

#[test]
fn bfs_from_nonzero_source() {
    check_all_schedules(&Bfs::new(17), 0.0);
}

#[test]
fn sssp_matches_reference_under_every_schedule() {
    check_all_schedules(&Sssp::new(0), 0.0);
}

#[test]
fn cc_matches_reference_under_every_schedule() {
    check_all_schedules(&ConnectedComponents::new(), 0.0);
}

#[test]
fn spmv_matches_reference_under_every_schedule() {
    check_all_schedules(&Spmv::new(), 1e-9);
}

#[test]
fn sssp_worklist_matches_reference_under_every_schedule() {
    // The compacted-wset variant (Fig. 9's `getFrontier`) must agree with
    // the scan-based frontier and the host reference everywhere.
    check_all_schedules(&Sssp::new(0).with_worklist(true), 0.0);
}

#[test]
fn sssp_worklist_agrees_with_scan_on_cycle_counts_order() {
    // On a large sparse graph with small frontiers, the worklist variant
    // must be faster under SparseWeaver (it registers only the frontier).
    let g = generators::with_random_weights(&generators::road_grid(40, 40, 0.6, 0.01, 3), 32, 7);
    let mut session = Session::new(GpuConfig::small_test());
    let scan = session
        .run(&g, &Sssp::new(0), Schedule::SparseWeaver)
        .unwrap();
    let wl = session
        .run(
            &g,
            &Sssp::new(0).with_worklist(true),
            Schedule::SparseWeaver,
        )
        .unwrap();
    assert!(scan.output.approx_eq(&wl.output, 0.0));
    assert!(
        wl.cycles < scan.cycles,
        "worklist {} should beat scan {} on sparse frontiers",
        wl.cycles,
        scan.cycles
    );
}

#[test]
fn empty_and_tiny_graphs() {
    let mut session = Session::new(GpuConfig::small_test());
    // Single vertex, no edges.
    let g = Csr::from_edges(1, &[]);
    for schedule in Schedule::ALL {
        let r = session.run(&g, &PageRank::new(2), schedule).unwrap();
        assert_eq!(r.output.as_f64().len(), 1);
        let b = session.run(&g, &Bfs::new(0), schedule).unwrap();
        assert_eq!(b.output.as_u64(), &[0]);
    }
}

#[test]
fn single_supernode_graph() {
    // A star: one vertex with every edge — the worst case for S_vm and
    // the high-degree spill path of the Weaver FSM (S5 -> S6 -> S2).
    let edges: Vec<(u32, u32)> = (1..60u32).flat_map(|v| [(0, v), (v, 0)]).collect();
    let g = Csr::from_edges(60, &edges);
    let algo = PageRank::new(3);
    let reference = algo.reference(&g);
    let mut session = Session::new(GpuConfig::small_test());
    for schedule in Schedule::ALL {
        let r = session.run(&g, &algo, schedule).unwrap();
        assert!(
            r.output.approx_eq(&reference, 1e-9),
            "star graph under {schedule}"
        );
    }
}

#[test]
fn vertices_exceeding_one_registration_round() {
    // More vertices than ST capacity x cores forces chunked registration.
    let g = generators::uniform(500, 1500, 11);
    let algo = PageRank::new(2);
    let reference = algo.reference(&g);
    let mut session = Session::new(GpuConfig::small_test());
    for schedule in [Schedule::SparseWeaver, Schedule::Eghw] {
        let r = session.run(&g, &algo, schedule).unwrap();
        assert!(
            r.output.approx_eq(&reference, 1e-9),
            "chunked registration under {schedule}"
        );
    }
}

#[test]
fn deterministic_cycle_counts() {
    let g = generators::powerlaw(100, 600, 2.0, 13);
    let mut session = Session::new(GpuConfig::small_test());
    for schedule in Schedule::ALL {
        let a = session.run(&g, &PageRank::new(2), schedule).unwrap();
        let b = session.run(&g, &PageRank::new(2), schedule).unwrap();
        assert_eq!(a.cycles, b.cycles, "{schedule} nondeterministic");
    }
}
